// Quickstart: define a tiny custom workload, register it as a scenario app,
// run it through the same declarative path every built-in workload uses, and
// ask Quanto where the joules went. Registering an app is all it takes to
// make a workload sweepable — the registry is open to binaries outside
// internal/apps, exactly like this one.
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/mote"
	"repro/internal/power"
	"repro/internal/scenario"
	"repro/internal/units"
)

// registerWork installs a one-node workload under the name "work": a
// periodic timer that toggles LED0 and burns CPU cycles under a "Work"
// activity.
func registerWork() {
	scenario.Register("work", func(spec scenario.Spec) (*scenario.Instance, error) {
		w := mote.NewWorld(spec.Seed)
		n := w.AddNode(1, spec.MoteOptions())
		k := n.K

		period := units.Ticks(spec.PeriodUS)
		if period <= 0 {
			period = 250 * units.Millisecond
		}
		toggles := 0
		work := k.DefineActivity("Work")
		k.Boot(func() {
			k.CPUAct.Set(work)
			t := k.NewTimer(func() {
				toggles++
				n.LEDs.Toggle(0) // LED0 runs on behalf of "Work"
				k.Spend(400)     // and so do these CPU cycles
			})
			t.StartPeriodic(period)
			k.CPUAct.SetIdle()
		})
		return &scenario.Instance{
			World: w,
			App:   n,
			Metrics: func() map[string]float64 {
				return map[string]float64{"toggles": float64(toggles)}
			},
		}, nil
	})
}

func main() {
	registerWork()

	// Ten simulated seconds of the workload, end stamped, analyzed through
	// the streaming pipeline. Build/Run/Finish is what scenario.RunSpec
	// does for a whole sweep; holding the instance keeps the full analysis
	// reachable too.
	in, err := scenario.Build(scenario.Spec{
		App:        "work",
		Seed:       42,
		DurationUS: int64(10 * units.Second),
	})
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	in.Run()
	res, err := in.Finish()
	if err != nil {
		log.Fatalf("analyze: %v", err)
	}

	fmt.Printf("log entries:        %d (12 bytes each)\n", res.Entries)
	fmt.Printf("LED toggles:        %.0f\n", res.Metrics["toggles"])
	fmt.Printf("energy measured:    %.2f mJ\n", res.TotalUJ/1000)
	fmt.Printf("average power:      %.2f mW\n", res.AvgPowerMW)

	fmt.Println("\nenergy by activity:")
	for name, uj := range res.ActivityUJ {
		fmt.Printf("  %-14s %8.2f mJ\n", name, uj/1000)
	}

	// The compact result is enough for sweeps; the same instance also
	// serves the full analysis (fitted draws, timelines).
	net, err := in.Network()
	if err != nil {
		log.Fatalf("analyze: %v", err)
	}
	a := net.Nodes[1]
	led0 := analysis.Predictor{Res: power.ResLED0, State: power.StateOn}
	volts := float64(in.World.Nodes[0].Volts)
	fmt.Printf("\nLED0 draw (fit):    %.2f mA\n", a.Reg.CurrentMA(led0, volts))
	fmt.Printf("baseline (fit):     %.2f mA\n", a.Reg.ConstCurrentMA(volts))
}
