// traffic demonstrates the synthetic traffic engine: shaped offered load
// (constant, ramp, burst, diurnal, heavy-tailed ON/OFF) driving the relay
// line, and record-and-replay of a realized send schedule.
//
// The default run records a bursty relay run's send schedule to a JSONL
// trace, replays that trace through a fresh world, and shows the two runs
// are indistinguishable — same sends, same deliveries, same energy — because
// shapes draw from private RNG streams the rest of the simulator never sees.
//
// With -matrix the example sweeps load shape × generation duty: every shape
// at several intensities, replicated across seeds, with delivery rate, drop
// rate, and energy per delivered packet per cell — how the accounting
// responds to the character of offered load, not just its average.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/apps"
	"repro/internal/scenario"
	"repro/internal/traffic"
	"repro/internal/units"
)

func main() {
	seed := flag.Uint64("seed", 7, "simulation seed")
	secs := flag.Int("secs", 5, "run length in seconds")
	out := flag.String("out", "", "write the recorded trace here (default: a temp file)")
	matrix := flag.Bool("matrix", false, "run the load-shape × duty sweep instead of record/replay")
	flag.Parse()

	if *matrix {
		runMatrix(*seed)
		return
	}
	recordReplay(*seed, *secs, *out)
}

// recordReplay runs the shaped recording pass, replays its trace, and checks
// the two runs agree on everything the accounting can see.
func recordReplay(seed uint64, secs int, out string) {
	spec := scenario.Spec{
		App:        "relay",
		Seed:       seed,
		DurationUS: int64(secs) * int64(units.Second),
		Nodes:      12,
		Origins:    4,
		Traffic: &traffic.Spec{
			Shape:    traffic.ShapeBurst,
			RPS:      2,
			BurstRPS: 50,
			BurstUS:  int64(100 * units.Millisecond),
			PeriodUS: int64(500 * units.Millisecond),
		},
		RecordTraffic: true,
	}
	in, err := scenario.Build(spec)
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	in.Run()
	r := in.App.(*apps.Relay)
	gen, del := r.Stats()
	fmt.Printf("shaped run:  %d sends offered, %d delivered, %d dropped\n", gen, del, r.Dropped())

	if out == "" {
		dir, err := os.MkdirTemp("", "quanto-traffic")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		out = filepath.Join(dir, "trace.jsonl")
	}
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	if err := in.Traffic.WriteJSONL(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded:    %d sends -> %s\n", len(in.Traffic.Events()), out)

	replay := spec
	replay.RecordTraffic = false
	replay.Traffic = &traffic.Spec{Shape: traffic.ShapeReplay, File: out}
	rin, err := scenario.Build(replay)
	if err != nil {
		log.Fatalf("build replay: %v", err)
	}
	rin.Run()
	rr := rin.App.(*apps.Relay)
	rgen, rdel := rr.Stats()
	fmt.Printf("replayed:    %d sends offered, %d delivered, %d dropped\n", rgen, rdel, rr.Dropped())
	if rgen != gen || rdel != del {
		log.Fatal("replay diverged from the shaped run — determinism contract broken")
	}
	fmt.Println("\nreplay reproduced the shaped run exactly: the schedule is the only")
	fmt.Println("randomness a shape injects, so a recorded schedule pins the whole run.")
}

// runMatrix sweeps the character of offered load against its duty: the same
// relay line under every shape, each at a mild and an aggressive setting.
// Sweep lists are ordinary JSON values, so the traffic object itself is the
// swept field.
func runMatrix(seed uint64) {
	shapes := []any{
		map[string]any{"shape": "constant", "rps": 5},
		map[string]any{"shape": "constant", "rps": 40},
		map[string]any{"shape": "ramp", "start_rps": 2, "step_rps": 8, "target_rps": 42, "slot_us": 1000000},
		map[string]any{"shape": "burst", "rps": 2, "burst_rps": 80, "burst_us": 100000, "period_us": 1000000},
		map[string]any{"shape": "diurnal", "rps": 20, "period_us": 4000000},
		map[string]any{"shape": "onoff", "rps": 40, "on_min_us": 300000, "off_min_us": 300000},
	}
	m := scenario.Matrix{
		Base: scenario.Spec{
			App:        "relay",
			Seed:       seed,
			Nodes:      12,
			Origins:    4,
			DurationUS: int64(5 * units.Second),
		},
		Sweep: map[string][]any{"traffic": shapes},
		Seeds: 4,
	}
	specs, err := m.Expand()
	if err != nil {
		log.Fatalf("expand: %v", err)
	}
	fmt.Printf("load-shape × duty sweep: %d runs (%d shapes × 4 seeds)\n\n", len(specs), len(shapes))
	results := (&scenario.Runner{}).Run(specs)
	for _, r := range results {
		if r.Error != "" {
			log.Fatalf("run %d: %s", r.Run, r.Error)
		}
	}

	ag := scenario.Aggregate(results)
	fmt.Printf("%-26s %10s %10s %10s %14s\n",
		"shape", "offered", "delivered", "dropped", "mJ/delivered")
	for _, g := range ag.Groups() {
		var spec *scenario.Spec
		for _, r := range results {
			if r.Spec.ConfigKey() == g.Key {
				spec = &r.Spec
				break
			}
		}
		gen := g.Stat("metric:generated").Mean()
		del := g.Stat("metric:delivered").Mean()
		drop := g.Stat("metric:dropped").Mean()
		perDelivered := "-" // a fully collapsed line delivers nothing
		if del > 0 {
			perDelivered = fmt.Sprintf("%.3f", g.Stat("total_uj").Mean()/1000/del)
		}
		fmt.Printf("%-26s %10.1f %10.1f %10.1f %14s\n",
			describeShape(spec.Traffic), gen, del, drop, perDelivered)
	}
	fmt.Println("\n(offered = sends the shapes scheduled; dropped = sends that found the")
	fmt.Println(" origin's radio busy; mJ/delivered is total network energy over deliveries —")
	fmt.Println(" bursty and heavy-tailed load pays more per packet than the same average")
	fmt.Println(" rate spread evenly)")
}

// describeShape renders a traffic spec as a compact table label.
func describeShape(t *traffic.Spec) string {
	switch t.Shape {
	case traffic.ShapeConstant:
		return fmt.Sprintf("constant %.0f rps", t.RPS)
	case traffic.ShapeRamp:
		return fmt.Sprintf("ramp %.0f->%.0f rps", t.StartRPS, t.TargetRPS)
	case traffic.ShapeBurst:
		return fmt.Sprintf("burst %.0f/%.0f rps", t.RPS, t.BurstRPS)
	case traffic.ShapeDiurnal:
		return fmt.Sprintf("diurnal %.0f rps peak", t.RPS)
	case traffic.ShapeOnOff:
		return fmt.Sprintf("onoff %.0f rps on-rate", t.RPS)
	default:
		return t.Shape
	}
}
