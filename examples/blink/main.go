// Blink runs the paper's hello-world calibration workload for 48 seconds
// and prints the full "where have all the joules gone" breakdown of
// Table 3, plus the activity timeline of Figure 11. The run is declared as
// a scenario spec and built through the app registry — the same path
// `quanto-trace sweep` uses to run whole matrices of these.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/scenario"
	"repro/internal/units"
)

func main() {
	seed := flag.Uint64("seed", 1, "simulation seed")
	secs := flag.Int("secs", 48, "run length in seconds")
	flag.Parse()

	in, err := scenario.Build(scenario.Spec{
		App:        "blink",
		Seed:       *seed,
		DurationUS: int64(*secs) * int64(units.Second),
	})
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	in.Run()

	blink := in.App.(*apps.Blink)
	tg := blink.Toggles()
	fmt.Printf("toggles: red=%d green=%d blue=%d\n\n", tg[0], tg[1], tg[2])

	net, err := in.Network()
	if err != nil {
		log.Fatalf("analyze: %v", err)
	}
	n := blink.Node
	a := net.Nodes[n.ID]

	rows := a.ActivityRows([]core.ResourceID{power.ResCPU, power.ResLED0, power.ResLED1, power.ResLED2}, 0, a.Span())
	fmt.Println(analysis.RenderGantt(rows, 0, a.Span(), 96))

	volts := float64(n.Volts)
	fmt.Println("\nregressed draws:")
	for _, p := range a.Reg.Predictors {
		fmt.Printf("  %-12s state %-2d  %6.3f mA\n", in.World.Dict.ResourceName(p.Res), p.State, a.Reg.CurrentMA(p, volts))
	}
	fmt.Printf("  %-12s           %6.3f mA\n", "const", a.Reg.ConstCurrentMA(volts))

	byRes, constUJ := a.EnergyByResource()
	fmt.Println("\nenergy by hardware component:")
	var total float64
	for res, uj := range byRes {
		fmt.Printf("  %-12s %8.2f mJ\n", in.World.Dict.ResourceName(res), uj/1000)
		total += uj
	}
	fmt.Printf("  %-12s %8.2f mJ\n", "const", constUJ/1000)
	fmt.Printf("  %-12s %8.2f mJ (measured: %.2f mJ)\n", "total",
		(total+constUJ)/1000, a.TotalEnergyUJ()/1000)
	fmt.Printf("\nreconstruction error vs meter: %.5f%%\n", a.ReconstructionError()*100)
}
