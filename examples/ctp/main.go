// ctp demonstrates the layered networking stack: a relay grid where
// packets follow a CTP-style collection tree (internal/net) to the sink
// instead of a hard-coded chain. Beacons carry each node's path cost
// (ETX-like, estimated from received beacon sequence gaps) and remaining
// energy margin; every node picks the cheapest parent, biased away from
// energy-poor ones.
//
// The default run is the energy-aware rerouting study: only the grid's
// center node — the cheapest way from the far corner to the sink — has a
// finite battery. When it dies mid-run, the death becomes a topology event,
// the children re-parent around the hole, and delivery demonstrably
// continues: the network outlives its first node.
//
// With -mobility the nodes move (random-waypoint) while routing, and the
// tree keeps re-forming as links stretch and break.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/scenario"
	"repro/internal/units"
)

func main() {
	seed := flag.Uint64("seed", 3, "simulation seed")
	secs := flag.Int("secs", 40, "run length in seconds")
	mobility := flag.String("mobility", "", `mobility model: "waypoint" or "drift" (empty: static)`)
	speed := flag.Float64("speed", 0, "mover speed in m/s (0: pedestrian 1.3)")
	flag.Parse()

	spec := scenario.Spec{
		App:        "relay",
		Seed:       *seed,
		DurationUS: int64(*secs) * int64(units.Second),
		Nodes:      9,
		Placement:  scenario.PlacementGrid,
		AreaM:      60, // 30 m pitch: corner-to-corner needs two hops
		Routing:    scenario.RoutingCTP,
		// Only the center node depletes: it sits on the cheapest
		// corner-to-sink path, so its death forces a reroute.
		BatteryNodeUAH: map[string]float64{"5": 60},
		Mobility:       *mobility,
		SpeedMPS:       *speed,
	}
	in, err := scenario.Build(spec)
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	in.Run()
	r := in.App.(*apps.Relay)

	gen, del := r.Stats()
	fmt.Printf("packets: generated=%d delivered=%d (no-route drops=%d, ttl drops=%d)\n\n",
		gen, del, r.NoRoute(), r.TTLDrops())

	fmt.Println("final tree (parent chosen by advertised cost + link ETX + energy bias):")
	for i, n := range r.World.Nodes {
		rt := r.Tree.Router(i)
		switch p, ok := rt.Parent(); {
		case n.ID == r.Nodes[len(r.Nodes)-1].ID:
			fmt.Printf("  node %d: root (the sink)\n", n.ID)
		case !n.Alive():
			fmt.Printf("  node %d: dead\n", n.ID)
		case ok:
			fmt.Printf("  node %d: parent %d  (path ETX %.2f)\n", n.ID, p, rt.PathETX())
		default:
			fmt.Printf("  node %d: no route\n", n.ID)
		}
	}

	ts := r.Tree.Stats()
	fmt.Printf("\nrouting plane: %d/%d routed, %d beacons sent, %d parent changes, %d loops avoided\n",
		ts.Routed, len(r.World.Nodes)-1, ts.BeaconsTx, ts.ParentChanges, ts.LoopAvoided)

	for _, d := range r.World.Deaths {
		fmt.Printf("\nnode %d died at %.1f s — last delivery %.1f s: the tree rerouted and the\n"+
			"network outlived its first death by %.1f s\n",
			d.Node, float64(d.At)/1e6, float64(r.LastDeliveredAt())/1e6,
			float64(r.LastDeliveredAt()-d.At)/1e6)
	}
	if len(r.World.Deaths) == 0 {
		fmt.Printf("\nno deaths this run; last delivery at %.1f s\n", float64(r.LastDeliveredAt())/1e6)
	}
}
