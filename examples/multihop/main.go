// multihop demonstrates network-wide "butterfly effect" tracking: a packet
// flood originated at node 1 is relayed down a line of nodes, and Quanto
// charges every hop's reception, forwarding and transmission energy back to
// the originating activity — including energy spent several hops away from
// where the activity started. The line is declared as a scenario spec
// (sweep -hops to resize it) and analyzed in one streaming pass.
//
// With -placement the run leaves the flat broadcast medium for the spatial
// link layer: nodes get positions, delivery is gated on range and per-link
// PRR, and overlapping co-channel frames collide unless one captures. The
// output then includes the observed per-link PRR table.
//
// With -matrix the example runs a density×duty sweep instead of a single
// run: random-geometric placements at several node counts crossed with
// several generation periods, replicated across seeds — the contention
// study the flat medium could not express.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/scenario"
	"repro/internal/units"
)

func main() {
	seed := flag.Uint64("seed", 17, "simulation seed")
	hops := flag.Int("hops", 4, "nodes in the relay line")
	secs := flag.Int("secs", 20, "run length in seconds")
	placement := flag.String("placement", "", `spatial placement: "line", "grid" or "rgg" (empty: broadcast medium)`)
	area := flag.Float64("area", 0, "deployment extent in meters (0: derived from -range)")
	rng := flag.Float64("range", 0, "delivery cutoff in meters (0: 50)")
	matrix := flag.Bool("matrix", false, "run the density×duty sweep instead of a single line")
	flag.Parse()

	if *matrix {
		runMatrix(*seed)
		return
	}

	in, err := scenario.Build(scenario.Spec{
		App:        "relay",
		Seed:       *seed,
		Nodes:      *hops,
		DurationUS: int64(*secs) * int64(units.Second),
		Placement:  *placement,
		AreaM:      *area,
		TxRangeM:   *rng,
	})
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	in.Run()
	r := in.App.(*apps.Relay)

	gen, del := r.Stats()
	fmt.Printf("packets: generated=%d delivered=%d over %d hops\n\n", gen, del, *hops)

	net, err := in.Network()
	if err != nil {
		log.Fatalf("analyze: %v", err)
	}

	fmt.Println("network-wide energy by activity (Remote = spent away from the origin node):")
	fmt.Print(net.Report())

	fmt.Printf("\nfootprint of %s per node:\n", in.World.Dict.LabelName(r.Act))
	for _, share := range net.Footprint(r.Act) {
		fmt.Printf("  node %d: %8.3f mJ\n", share.Node, share.EnergyUJ/1000)
	}
	fmt.Printf("remote share: %.1f%% of the activity's total\n",
		100*net.RemoteEnergyUJ(r.Act)/net.EnergyByActivity()[r.Act])

	if in.World.Medium.SpatialEnabled() {
		fmt.Printf("\nper-link delivery (collisions network-wide: %d):\n", in.World.Medium.Collisions())
		fmt.Printf("  %-10s %8s %9s %10s %7s\n", "link", "frames", "delivered", "collisions", "prr")
		for _, l := range in.World.Medium.LinkStats() {
			fmt.Printf("  %3d -> %-3d %8d %9d %10d %6.1f%%\n",
				l.Src, l.Dst, l.Attempts, l.Delivered, l.Collisions, 100*l.PRR)
		}
	}
}

// runMatrix sweeps density (the extent an 8-node relay line is stretched
// over — tight spacing means solid links, wide spacing pushes every hop
// into the path-loss gray region) against duty (the origin's generation
// period), replicated across seeds. Delivery, observed link PRR, and
// energy-per-delivery respond to both axes — the study the flat broadcast
// medium could not express.
func runMatrix(seed uint64) {
	m := scenario.Matrix{
		Base: scenario.Spec{
			App:        "relay",
			Seed:       seed,
			Nodes:      8,
			DurationUS: int64(10 * units.Second),
			Placement:  scenario.PlacementLine,
		},
		Sweep: map[string][]any{
			"area_m": {105.0, 210.0, 280.0}, // 15/30/40 m hop spacing
			// 20 ms approaches the flood's per-chain latency: several
			// packets share the pipe, hidden-terminal collisions appear,
			// and forwarders drop under load. 1 s is the paper's regime.
			"period_us": {20000, 250000, 1000000},
		},
		Seeds: 4,
	}
	specs, err := m.Expand()
	if err != nil {
		log.Fatalf("expand: %v", err)
	}
	fmt.Printf("density × duty sweep: %d runs (3 spacings × 3 periods × 4 seeds)\n\n", len(specs))
	results := (&scenario.Runner{}).Run(specs)
	for _, r := range results {
		if r.Error != "" {
			log.Fatalf("run %d: %s", r.Run, r.Error)
		}
	}

	ag := scenario.Aggregate(results)
	fmt.Printf("%-10s %-10s %12s %12s %12s %12s\n",
		"spacing", "period", "delivered", "link prr", "collisions", "total mJ")
	for _, g := range ag.Groups() {
		// Recover the swept knobs from one representative run of the group.
		var spec *scenario.Spec
		for _, r := range results {
			if r.Spec.ConfigKey() == g.Key {
				spec = &r.Spec
				break
			}
		}
		prr := 0.0
		if st := g.Stat("link_prr"); st != nil {
			prr = st.Mean()
		}
		fmt.Printf("%-10s %-10s %12.1f %11.1f%% %12.1f %12.2f\n",
			fmt.Sprintf("%.0f m", spec.AreaM/float64(spec.Nodes-1)),
			fmt.Sprintf("%d ms", spec.PeriodUS/1000),
			g.Stat("metric:delivered").Mean(), 100*prr,
			g.Stat("collisions").Mean(), g.Stat("total_uj").Mean()/1000)
	}
	fmt.Println("\n(delivered = packets reaching the final hop; prr is the mean observed")
	fmt.Println(" link delivery ratio; collisions are receptions lost to co-channel overlap)")
}
