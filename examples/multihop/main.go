// multihop demonstrates network-wide "butterfly effect" tracking: a packet
// flood originated at node 1 is relayed down a line of nodes, and Quanto
// charges every hop's reception, forwarding and transmission energy back to
// the originating activity — including energy spent several hops away from
// where the activity started. The line is declared as a scenario spec
// (sweep -hops to resize it) and analyzed in one streaming pass.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/scenario"
	"repro/internal/units"
)

func main() {
	seed := flag.Uint64("seed", 17, "simulation seed")
	hops := flag.Int("hops", 4, "nodes in the relay line")
	secs := flag.Int("secs", 20, "run length in seconds")
	flag.Parse()

	in, err := scenario.Build(scenario.Spec{
		App:        "relay",
		Seed:       *seed,
		Nodes:      *hops,
		DurationUS: int64(*secs) * int64(units.Second),
	})
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	in.Run()
	r := in.App.(*apps.Relay)

	gen, del := r.Stats()
	fmt.Printf("packets: generated=%d delivered=%d over %d hops\n\n", gen, del, *hops)

	net, err := in.Network()
	if err != nil {
		log.Fatalf("analyze: %v", err)
	}

	fmt.Println("network-wide energy by activity (Remote = spent away from the origin node):")
	fmt.Print(net.Report())

	fmt.Printf("\nfootprint of %s per node:\n", in.World.Dict.LabelName(r.Act))
	for _, share := range net.Footprint(r.Act) {
		fmt.Printf("  node %d: %8.3f mJ\n", share.Node, share.EnergyUJ/1000)
	}
	fmt.Printf("remote share: %.1f%% of the activity's total\n",
		100*net.RemoteEnergyUJ(r.Act)/net.EnergyByActivity()[r.Act])
}
