// multihop demonstrates network-wide "butterfly effect" tracking: a packet
// flood originated at node 1 is relayed down a 4-node line, and Quanto
// charges every hop's reception, forwarding and transmission energy back to
// the originating activity — including energy spent three hops away from
// where the activity started.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/units"
)

func main() {
	seed := flag.Uint64("seed", 17, "simulation seed")
	hops := flag.Int("hops", 4, "nodes in the relay line")
	secs := flag.Int("secs", 20, "run length in seconds")
	flag.Parse()

	cfg := apps.DefaultRelayConfig()
	cfg.Hops = *hops
	r := apps.NewRelay(*seed, cfg)
	r.Run(units.Ticks(*secs) * units.Second)

	gen, del := r.Stats()
	fmt.Printf("packets: generated=%d delivered=%d over %d hops\n\n", gen, del, *hops)

	var analyses []*analysis.Analysis
	for _, n := range r.Nodes {
		tr := analysis.NewNodeTrace(n.ID, n.Log.Entries, n.Meter.PulseEnergy(), n.Volts)
		a, err := analysis.Analyze(tr, r.World.Dict, analysis.DefaultOptions())
		if err != nil {
			log.Fatalf("analyze node %d: %v", n.ID, err)
		}
		analyses = append(analyses, a)
	}
	net := analysis.NewNetwork(r.World.Dict, analyses...)

	fmt.Println("network-wide energy by activity (Remote = spent away from the origin node):")
	fmt.Print(net.Report())

	fmt.Printf("\nfootprint of %s per node:\n", r.World.Dict.LabelName(r.Act))
	for _, share := range net.Footprint(r.Act) {
		fmt.Printf("  node %d: %8.3f mJ\n", share.Node, share.EnergyUJ/1000)
	}
	fmt.Printf("remote share: %.1f%% of the activity's total\n",
		100*net.RemoteEnergyUJ(r.Act)/net.EnergyByActivity()[r.Act])
}
