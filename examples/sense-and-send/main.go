// sense-and-send runs the Figure 7 application: a sensing node samples
// humidity and temperature under dedicated activities and ships the
// readings to a base station, which ends up charging its reception work to
// the sensing node's packet activity. Declared as a scenario spec and
// analyzed through the streaming network analyzer.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/power"
	"repro/internal/scenario"
	"repro/internal/units"
)

func main() {
	seed := flag.Uint64("seed", 21, "simulation seed")
	secs := flag.Int("secs", 30, "run length in seconds")
	flag.Parse()

	in, err := scenario.Build(scenario.Spec{
		App:        "sensesend",
		Seed:       *seed,
		DurationUS: int64(*secs) * int64(units.Second),
	})
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	in.Run()
	s := in.App.(*apps.SenseSend)

	sent, received := s.Stats()
	fmt.Printf("reports: sent=%d received=%d; sensor conversions=%d\n\n",
		sent, received, s.Sensor.Sensor.Reads())

	net, err := in.Network()
	if err != nil {
		log.Fatalf("analyze: %v", err)
	}

	// Sensing node: energy split across the three application activities.
	a := net.Nodes[s.Sensor.ID]
	fmt.Println("sensing node, energy by activity:")
	for l, uj := range a.EnergyByActivity() {
		name := "Const."
		if l != analysis.ConstLabel {
			name = in.World.Dict.LabelName(l)
		}
		if uj < 1 {
			continue
		}
		fmt.Printf("  %-14s %8.2f mJ\n", name, uj/1000)
	}

	// Base station: how much CPU time went to the sensing node's packets?
	aB := net.Nodes[s.Base.ID]
	times := aB.TimeByActivity()
	fmt.Println("\nbase station, CPU time by activity:")
	for l, us := range times[power.ResCPU] {
		if us < 1000 {
			continue
		}
		fmt.Printf("  %-14s %8.2f ms\n", in.World.Dict.LabelName(l), float64(us)/1000)
	}
}
