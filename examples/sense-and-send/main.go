// sense-and-send runs the Figure 7 application: a sensing node samples
// humidity and temperature under dedicated activities and ships the
// readings to a base station, which ends up charging its reception work to
// the sensing node's packet activity.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/power"
	"repro/internal/units"
)

func main() {
	seed := flag.Uint64("seed", 21, "simulation seed")
	secs := flag.Int("secs", 30, "run length in seconds")
	flag.Parse()

	s := apps.NewSenseSend(*seed, apps.DefaultSenseSendConfig())
	s.Run(units.Ticks(*secs) * units.Second)

	sent, received := s.Stats()
	fmt.Printf("reports: sent=%d received=%d; sensor conversions=%d\n\n",
		sent, received, s.Sensor.Sensor.Reads())

	// Sensing node: energy split across the three application activities.
	tr := analysis.NewNodeTrace(s.Sensor.ID, s.Sensor.Log.Entries, s.Sensor.Meter.PulseEnergy(), s.Sensor.Volts)
	a, err := analysis.Analyze(tr, s.World.Dict, analysis.DefaultOptions())
	if err != nil {
		log.Fatalf("analyze sensor: %v", err)
	}
	fmt.Println("sensing node, energy by activity:")
	for l, uj := range a.EnergyByActivity() {
		name := "Const."
		if l != analysis.ConstLabel {
			name = s.World.Dict.LabelName(l)
		}
		if uj < 1 {
			continue
		}
		fmt.Printf("  %-14s %8.2f mJ\n", name, uj/1000)
	}

	// Base station: how much CPU time went to the sensing node's packets?
	trB := analysis.NewNodeTrace(s.Base.ID, s.Base.Log.Entries, s.Base.Meter.PulseEnergy(), s.Base.Volts)
	aB, err := analysis.Analyze(trB, s.World.Dict, analysis.DefaultOptions())
	if err != nil {
		log.Fatalf("analyze base: %v", err)
	}
	times := aB.TimeByActivity()
	fmt.Println("\nbase station, CPU time by activity:")
	for l, us := range times[power.ResCPU] {
		if us < 1000 {
			continue
		}
		fmt.Printf("  %-14s %8.2f ms\n", s.World.Dict.LabelName(l), float64(us)/1000)
	}
}
