// lifetime is the energy-budget walkthrough: it answers the question
// Quanto's accounting alone cannot — "how long does this node live on this
// budget?" — and shows the first place where the simulation outcome feeds
// back into network behavior instead of just being recorded.
//
// Part 1 starves the middle hop of a 3-node relay line: the hop listens
// continuously and forwards every packet, so its battery drains fastest, it
// browns out mid-run, and the perfectly healthy sink downstream stops
// receiving anything — a cascade failure caused by one node's budget.
//
// Part 2 runs the capacity × duty-cycle lifetime matrix for a low-power
// listening node (with and without a harvesting supplement) and prints the
// cross-seed lifetime table: death rate, mean time-to-death ± CI95, and the
// energy margin survivors keep. The same study runs from a JSON file via
// `quanto-trace lifetime`.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/scenario"
	"repro/internal/units"
)

func main() {
	seed := flag.Uint64("seed", 3, "simulation seed")
	secs := flag.Int("secs", 60, "relay run length in seconds")
	uah := flag.Float64("uah", 100, "middle hop's battery capacity in uAh")
	seeds := flag.Int("seeds", 6, "replicas per configuration in the matrix")
	flag.Parse()

	cascade(*seed, *secs, *uah)
	matrix(*seed, *seeds)
}

// cascade starves the middle hop of a relay line and watches the fallout.
func cascade(seed uint64, secs int, uah float64) {
	spec := scenario.Spec{
		App:        "relay",
		Seed:       seed,
		Nodes:      3,
		DurationUS: int64(secs) * int64(units.Second),
		PeriodUS:   int64(units.Second),
		// Only node 2 gets a finite battery; the origin and the sink keep
		// infinite supplies so every lost delivery is the cascade, not a
		// local outage.
		BatteryNodeUAH: map[string]float64{"2": uah},
	}
	in, err := scenario.Build(spec)
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	in.Run()
	res, err := in.Finish()
	if err != nil {
		log.Fatalf("finish: %v", err)
	}
	r := in.App.(*apps.Relay)
	gen, del := r.Stats()

	fmt.Printf("=== cascade: 3-hop relay, node 2 on a %.0f uAh budget ===\n\n", uah)
	fmt.Printf("packets: generated=%d delivered=%d over %d s\n", gen, del, secs)
	for _, d := range in.World.Deaths {
		fmt.Printf("death:   node %d at %.3f s\n", d.Node, units.Ticks(d.At).Seconds())
	}
	fmt.Println("\nper-node outcome:")
	for _, n := range res.Nodes {
		state := "alive (infinite supply)"
		if n.BatteryUAH > 0 {
			if n.Died {
				state = fmt.Sprintf("DEAD at %.3f s (%.0f uAh battery)",
					float64(n.DiedAtUS)/1e6, n.BatteryUAH)
			} else {
				state = fmt.Sprintf("alive, %.1f%% margin (%.0f uAh battery)",
					n.MarginFrac*100, n.BatteryUAH)
			}
		}
		fmt.Printf("  node %d: %8.3f mJ, %s\n", n.Node, n.EnergyUJ/1000, state)
	}
	if res.Deaths > 0 && del < gen {
		fmt.Printf("\nthe sink is healthy but delivered only %d of %d packets:\n", del, gen)
		fmt.Println("everything after the middle hop's death was lost in the cascade.")
	}
	fmt.Println()
}

// matrix sweeps battery capacity x LPL check period, with and without a
// harvesting supplement, and prints the cross-seed lifetime statistics.
func matrix(seed uint64, seeds int) {
	m := &scenario.Matrix{
		Base: scenario.Spec{
			App:        "lpl",
			Seed:       seed,
			DurationUS: int64(30 * units.Second),
			Channel:    17, // overlapping 802.11b channel: interference wakes the radio
		},
		Sweep: map[string][]any{
			"battery_uah":     []any{4.0, 8.0},
			"check_period_us": []any{int64(250 * units.Millisecond), int64(500 * units.Millisecond)},
			"harvest": []any{
				nil,
				map[string]any{"profile": "constant", "ua": 500},
			},
		},
		Seeds: seeds,
	}
	specs, err := m.Expand()
	if err != nil {
		log.Fatalf("expand: %v", err)
	}
	fmt.Printf("=== lifetime matrix: %d runs (capacity x check period x harvest, %d seeds) ===\n\n",
		len(specs), seeds)
	results := (&scenario.Runner{}).Run(specs)
	for _, r := range results {
		if r.Error != "" {
			log.Fatalf("run %d: %s", r.Run, r.Error)
		}
	}
	fmt.Print(scenario.Lifetimes(results).Render())
	fmt.Println("\nsame study from JSON: see `quanto-trace lifetime` in the README.")
}
