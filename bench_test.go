// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per exhibit), plus ablation benches for the design choices
// DESIGN.md calls out and micro-benchmarks of the logging fast path.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Headline numbers are attached to each benchmark via ReportMetric, so the
// bench output doubles as a compact reproduction summary.
package repro

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/icount"
	"repro/internal/linalg"
	"repro/internal/mote"
	"repro/internal/power"
	"repro/internal/trace"
	"repro/internal/units"
)

const benchSeed = 1

// reportValues attaches selected experiment values as benchmark metrics.
func reportValues(b *testing.B, r *experiments.Report, keys ...string) {
	b.Helper()
	for _, k := range keys {
		if v, ok := r.Values[k]; ok {
			b.ReportMetric(v, k)
		}
	}
}

func BenchmarkTable1PlatformInventory(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.Table1()
	}
	reportValues(b, r, "sinks", "states")
}

func BenchmarkFigure10PulseLinearity(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Figure10(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportValues(b, r, "slope_mA_per_kHz", "r2")
}

func BenchmarkTable2Calibration(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Table2(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportValues(b, r, "led0_mA", "led1_mA", "led2_mA", "const_mA", "rel_err")
}

func BenchmarkFigure11BlinkTimeline(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Figure11(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportValues(b, r, "avg_power_mW", "recon_vs_meter_rel_err")
}

func BenchmarkTable3BlinkBreakdown(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Table3(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportValues(b, r, "total_mJ", "red_mJ", "cpu_mA")
}

func BenchmarkFigure12Bounce(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Figure12(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportValues(b, r, "cpu_ms_for_remote", "node1_rx")
}

func BenchmarkFigure13LPLInterference(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Figure13(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportValues(b, r, "fp17", "duty17", "duty26", "power_ratio")
}

func BenchmarkFigure14WakeupDetail(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Figure14(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportValues(b, r, "rx_listen_mW", "normal_ms", "fp_ms")
}

func BenchmarkFigure15TimerBug(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Figure15(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportValues(b, r, "rate_hz")
}

func BenchmarkFigure16DMAvsInterrupt(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Figure16(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportValues(b, r, "normal_ms", "dma_ms", "speedup")
}

func BenchmarkTable4LoggingCosts(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Table4(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportValues(b, r, "entries", "log_ms", "log_share_active")
}

func BenchmarkTable5InstrumentationLoC(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Table5()
		if err != nil {
			b.Fatal(err)
		}
	}
	reportValues(b, r, "total_loc")
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationRegressionWeights compares the paper's w = sqrt(E*t)
// weighting against unweighted OLS on the same Blink trace, reporting the
// absolute error of the recovered LED0 draw (truth: 2.505 mA).
func BenchmarkAblationRegressionWeights(b *testing.B) {
	w, n, _ := apps.RunBlink(benchSeed, 48*units.Second, mote.DefaultOptions())
	tr := analysis.NewNodeTrace(n.ID, n.Log.Entries, n.Meter.PulseEnergy(), n.Volts)
	led0 := analysis.Predictor{Res: power.ResLED0, State: power.StateOn}
	_ = w

	var errW, errU float64
	for i := 0; i < b.N; i++ {
		ivs := tr.StateIntervals()
		regW, err := analysis.RunRegression(ivs, tr.PulseUJ, analysis.RegressionOptions{Weighted: true, IncludeConstant: true})
		if err != nil {
			b.Fatal(err)
		}
		optU := analysis.RegressionOptions{Weighted: false, IncludeConstant: true}
		regU, err := analysis.RunRegression(ivs, tr.PulseUJ, optU)
		if err != nil {
			b.Fatal(err)
		}
		errW = abs(regW.PowerMW[led0]/3.0 - 2.505)
		errU = abs(regU.PowerMW[led0]/3.0 - 2.505)
	}
	b.ReportMetric(errW*1000, "weighted_err_uA")
	b.ReportMetric(errU*1000, "unweighted_err_uA")
}

// BenchmarkAblationProxyBinding quantifies what proxy binding buys: with
// ResolveProxies off, the CPU time node 1 spends receiving node 4's packets
// stays stuck on the interrupt proxies instead of the remote activity.
func BenchmarkAblationProxyBinding(b *testing.B) {
	bounce := apps.NewBounce(benchSeed, apps.DefaultBounceConfig())
	bounce.Run(4 * units.Second)
	n := bounce.Nodes[0]
	remote := bounce.Activities()[1]
	tr := analysis.NewNodeTrace(n.ID, n.Log.Entries, n.Meter.PulseEnergy(), n.Volts)

	var withBind, withoutBind float64
	for i := 0; i < b.N; i++ {
		for _, resolve := range []bool{true, false} {
			opts := analysis.DefaultOptions()
			opts.ResolveProxies = resolve
			a, err := analysis.Analyze(tr, bounce.World.Dict, opts)
			if err != nil {
				b.Fatal(err)
			}
			ms := float64(a.TimeByActivity()[power.ResCPU][remote]) / 1000
			if resolve {
				withBind = ms
			} else {
				withoutBind = ms
			}
		}
	}
	b.ReportMetric(withBind, "remote_cpu_ms_bound")
	b.ReportMetric(withoutBind, "remote_cpu_ms_unbound")
}

// BenchmarkAblationSplitPolicy compares equal-split against first-takes-all
// accounting for a multi-activity device serving two activities.
func BenchmarkAblationSplitPolicy(b *testing.B) {
	w, n := mote.NewSingleNode(benchSeed)
	k := n.K
	actA := k.DefineActivity("A")
	actB := k.DefineActivity("B")
	shared := core.NewMultiActivityDevice(n.Trk, power.ResRadioRx)
	ps := core.NewPowerStateVar(n.Trk, power.ResRadioRx, power.RadioRxOff)
	n.Board.AddSink(power.ResRadioRx, power.RadioRxOff)
	k.Boot(func() {
		k.CPUAct.Set(actA)
		_ = shared.Add(actA)
		ps.Set(power.RadioRxListen)
		t := k.NewTimer(func() { _ = shared.Add(actB) })
		t.StartOneShot(2 * units.Second)
		t2 := k.NewTimer(func() {
			_ = shared.Remove(actA)
			_ = shared.Remove(actB)
			ps.Set(power.RadioRxOff)
		})
		t2.StartOneShot(6 * units.Second)
		k.CPUAct.SetIdle()
	})
	w.Run(8 * units.Second)
	w.StampEnd()
	tr := analysis.NewNodeTrace(n.ID, n.Log.Entries, n.Meter.PulseEnergy(), n.Volts)

	var equalA, firstA float64
	for i := 0; i < b.N; i++ {
		for _, split := range []analysis.SplitPolicy{analysis.SplitEqual, analysis.SplitFirst} {
			opts := analysis.DefaultOptions()
			opts.Split = split
			a, err := analysis.Analyze(tr, w.Dict, opts)
			if err != nil {
				b.Fatal(err)
			}
			mj := a.EnergyByActivity()[actA] / 1000
			if split == analysis.SplitEqual {
				equalA = mj
			} else {
				firstA = mj
			}
		}
	}
	b.ReportMetric(equalA, "actA_mJ_equal_split")
	b.ReportMetric(firstA, "actA_mJ_first_split")
}

// BenchmarkAblationCounters compares full event logging against the
// fixed-memory counting alternative of Section 5.1.
func BenchmarkAblationCounters(b *testing.B) {
	var logBytes, counterKeys float64
	for i := 0; i < b.N; i++ {
		w, n, _ := apps.RunBlink(benchSeed, 12*units.Second, mote.DefaultOptions())
		_ = w
		logBytes = float64(len(n.Log.Entries) * core.EntrySize)

		counters := core.NewCounterSink()
		for _, e := range n.Log.Entries {
			counters.Record(e)
		}
		counterKeys = float64(len(counters.PerType) + len(counters.PerRes))
	}
	b.ReportMetric(logBytes, "log_bytes")
	b.ReportMetric(counterKeys, "counter_keys")
}

// BenchmarkNetworkFootprint regenerates the extra network-wide exhibit: the
// remote-energy share of a multihop flood (Section 5.3's butterfly effect).
func BenchmarkNetworkFootprint(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.NetworkFootprint(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportValues(b, r, "remote_frac", "nodes_in_footprint")
}

// BenchmarkOnlineAccountant measures the per-event cost of the real-time
// accounting mode against replaying a Blink log.
func BenchmarkOnlineAccountant(b *testing.B) {
	w, n, _ := apps.RunBlink(benchSeed, 48*units.Second, mote.DefaultOptions())
	tr := analysis.NewNodeTrace(n.ID, n.Log.Entries, n.Meter.PulseEnergy(), n.Volts)
	a, err := analysis.Analyze(tr, w.Dict, analysis.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := analysis.NewOnlineAccountant(n.ID, tr.PulseUJ, a.Reg.PowerMW)
		for _, e := range tr.Entries {
			o.Record(e)
		}
		if o.TotalUJ() <= 0 {
			b.Fatal("no energy accounted")
		}
	}
	b.ReportMetric(float64(len(tr.Entries)), "events")
}

// --- Micro-benchmarks ----------------------------------------------------

// BenchmarkLogEntry measures the Go-side cost of the logging fast path (the
// mote-side cost is the modeled 102 cycles).
func BenchmarkLogEntry(b *testing.B) {
	clock := fixedClock(7)
	meter := fixedMeter(9)
	sink := core.NewCounterSink()
	trk := core.NewTracker(core.Config{Node: 1, Clock: clock, Meter: meter, Sink: sink})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trk.Log(core.EntryPowerState, power.ResLED0, uint16(i&1))
	}
}

type fixedClock uint32

func (c fixedClock) NowMicros() uint32 { return uint32(c) }

type fixedMeter uint32

func (m fixedMeter) ReadPulses() uint32 { return uint32(m) }

// BenchmarkTraceCodec measures entry encode+decode throughput.
func BenchmarkTraceCodec(b *testing.B) {
	e := core.Entry{Type: core.EntryPowerState, Res: 3, Time: 123456, IC: 789, Val: 1}
	var buf [trace.EntrySize]byte
	b.SetBytes(trace.EntrySize)
	for i := 0; i < b.N; i++ {
		trace.Encode(buf[:], e)
		if _, err := trace.Decode(buf[:]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWLS measures the regression solver on a Blink-sized problem.
func BenchmarkWLS(b *testing.B) {
	x := linalg.NewMatrix(16, 5)
	y := make([]float64, 16)
	wts := make([]float64, 16)
	for i := 0; i < 16; i++ {
		for j := 0; j < 4; j++ {
			if (i>>j)&1 == 1 {
				x.Set(i, j, 1)
			}
		}
		x.Set(i, 4, 1)
		y[i] = float64(i%7) + 1
		wts[i] = float64(i + 1)
	}
	for i := 0; i < b.N; i++ {
		if _, err := linalg.WLS(x, y, wts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeterRead measures the iCount read path.
func BenchmarkMeterRead(b *testing.B) {
	now := units.Ticks(0)
	m := icount.New(3.0, func() units.Ticks { return now })
	m.CurrentChanged(0, 5000)
	for i := 0; i < b.N; i++ {
		now += 10
		_ = m.ReadPulses()
	}
}

// BenchmarkBlinkSimulation measures raw simulation throughput (one 48 s
// Blink run per iteration).
func BenchmarkBlinkSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, n, _ := apps.RunBlink(benchSeed, 48*units.Second, mote.DefaultOptions())
		if len(n.Log.Entries) == 0 {
			b.Fatal("empty log")
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
