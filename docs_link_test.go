// TestDocLinks is the repo's link checker: every relative link and
// every backtick-quoted path reference in README.md, docs/*.md, and the
// per-example walkthroughs (examples/*/README.md) must resolve to a real
// file or directory, so architecture-doc references cannot rot silently
// when packages move. CI runs it in the docs job.
package repro

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches [text](target) markdown links.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// codePath matches backtick-quoted repo paths like `internal/power/draws.go`
// or `cmd/quanto-trace` or `examples/` — references the docs make to code.
// Only spans that look like paths (contain a slash) are checked; command
// lines and identifiers don't.
var codePath = regexp.MustCompile("`([A-Za-z0-9_.-]+(?:/[A-Za-z0-9_.*-]+)+/?)`")

func docFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md"}
	entries, err := os.ReadDir("docs")
	if err != nil {
		if os.IsNotExist(err) {
			return files
		}
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".md") {
			files = append(files, filepath.Join("docs", e.Name()))
		}
	}
	walkthroughs, err := filepath.Glob(filepath.Join("examples", "*", "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	return append(files, walkthroughs...)
}

func TestDocLinks(t *testing.T) {
	for _, file := range docFiles(t) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		text := string(data)
		dir := filepath.Dir(file)

		for _, m := range mdLink.FindAllStringSubmatch(text, -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "#") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
				t.Errorf("%s: broken link target %q", file, m[1])
			}
		}

		for _, m := range codePath.FindAllStringSubmatch(text, -1) {
			p := strings.TrimSuffix(m[1], "/")
			if strings.ContainsAny(p, "*") {
				// Glob references like bench patterns: check the directory
				// part only.
				p = filepath.Dir(p)
			}
			// Code paths are repo-root relative regardless of which doc
			// mentions them.
			if _, err := os.Stat(p); err != nil {
				t.Errorf("%s: code path reference `%s` does not exist", file, m[1])
			}
		}
	}
}

// TestDocsMentionNewLayers pins that the architecture doc exists and keeps
// covering the load-bearing contracts; a rewrite that drops one of these
// sections should be a conscious decision, not an accident.
func TestDocsMentionNewLayers(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("docs", "ARCHITECTURE.md"))
	if err != nil {
		t.Fatalf("docs/ARCHITECTURE.md missing: %v", err)
	}
	text := string(data)
	for _, want := range []string{
		"internal/power", "internal/scenario", "internal/analysis",
		"Battery", "determinism", "Sink",
		"internal/sim/partition.go", "lookahead",
		"internal/traffic", "replay",
		"internal/lint", "quantovet", "quanto:ordered", "quanto:wallclock",
		"internal/net", "collection tree", "NeighborDied", "mobility",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("ARCHITECTURE.md no longer mentions %q", want)
		}
	}

	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("README.md missing: %v", err)
	}
	for _, want := range []string{"Determinism contract, machine-checked", "quantovet"} {
		if !strings.Contains(string(readme), want) {
			t.Errorf("README.md no longer mentions %q", want)
		}
	}
}
