// Command quanto-loc prints the instrumentation/infrastructure size report
// (the Table 5 analog): lines of code per instrumented subsystem in this
// repository.
package main

import (
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	rep, err := experiments.Table5()
	if err != nil {
		fmt.Fprintf(os.Stderr, "quanto-loc: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(rep.String())
}
