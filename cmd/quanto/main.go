// Command quanto runs the paper's workloads on the simulated platform and
// reproduces its tables and figures.
//
// Usage:
//
//	quanto [-seed N] [-list] [experiment ...]
//
// With no arguments every experiment runs in paper order. Experiment names:
// table1, fig10, table2, fig11, table3, fig12, fig13, fig14, fig15, fig16,
// table4, table5.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 1, "simulation seed (all randomness is derived from it)")
	list := flag.Bool("list", false, "list experiment names and exit")
	flag.Parse()

	runners := map[string]func(uint64) (*experiments.Report, error){
		"table1": func(uint64) (*experiments.Report, error) { return experiments.Table1(), nil },
		"fig10":  experiments.Figure10,
		"table2": experiments.Table2,
		"fig11":  experiments.Figure11,
		"table3": experiments.Table3,
		"fig12":  experiments.Figure12,
		"fig13":  experiments.Figure13,
		"fig14":  experiments.Figure14,
		"fig15":  experiments.Figure15,
		"fig16":  experiments.Figure16,
		"table4": experiments.Table4,
		"table5": func(uint64) (*experiments.Report, error) { return experiments.Table5() },
		// Beyond the paper's exhibits: the §5.3 network-wide footprint.
		"network": experiments.NetworkFootprint,
	}
	order := []string{"table1", "fig10", "table2", "fig11", "table3", "fig12", "fig13", "fig14", "fig15", "fig16", "table4", "table5", "network"}

	if *list {
		for _, name := range order {
			fmt.Println(name)
		}
		return
	}

	names := flag.Args()
	if len(names) == 0 {
		names = order
	}
	for _, name := range names {
		run, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "quanto: unknown experiment %q (use -list)\n", name)
			os.Exit(2)
		}
		rep, err := run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quanto: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(rep.String())
	}
}
