// benchjson turns `go test -bench` output into a schema'd JSON artifact and
// compares fresh runs against a committed baseline.
//
// The repo's perf trajectory lives in BENCH_core.json, BENCH_sweep.json and
// BENCH_medium.json at the repo root: one file per benchmark suite, each a
// quanto-bench/v1 document listing ns/op, B/op, allocs/op and every custom
// metric (events/sec, runs/sec per worker count, ...) for every
// sub-benchmark. CI regenerates the numbers on each push and runs the
// compare mode against the committed files, so a scheduler or medium
// regression shows up as a red check instead of a slow drift.
//
// Emit an artifact:
//
//	go test -run '^$' -bench Benchmark10kNodeRelay -benchmem -benchtime 3x . |
//	    benchjson -suite core -out BENCH_core.json
//
// Compare a fresh run against the committed baseline (exit 1 on >15%
// allocs/op regression, warning annotations for time, which is noisy on
// shared runners; -fail-on time,allocs tightens it):
//
//	go test -run '^$' -bench Benchmark10kNodeRelay -benchmem -benchtime 3x . |
//	    benchjson -suite core -compare BENCH_core.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/benchfmt"
)

func main() {
	var (
		suite     = flag.String("suite", "", "suite name recorded in the artifact (core, sweep, medium)")
		in        = flag.String("in", "-", "bench output to read (- for stdin)")
		out       = flag.String("out", "", "write the parsed artifact to this file")
		compare   = flag.String("compare", "", "baseline artifact to compare the fresh run against")
		threshold = flag.Float64("threshold", 0.15, "relative regression that fails or annotates")
		failOn    = flag.String("fail-on", "allocs", "comma list of dimensions that exit non-zero on regression: allocs, time")
	)
	flag.Parse()
	if *out == "" && *compare == "" {
		fmt.Fprintln(os.Stderr, "benchjson: need -out and/or -compare")
		os.Exit(2)
	}

	src := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	doc, err := benchfmt.Parse(src, *suite)
	if err != nil {
		fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark result lines in input"))
	}

	if *out != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
	}

	if *compare != "" {
		base, err := benchfmt.Load(*compare)
		if err != nil {
			fatal(err)
		}
		failDims := map[string]bool{}
		for _, d := range strings.Split(*failOn, ",") {
			if d = strings.TrimSpace(d); d != "" {
				failDims[d] = true
			}
		}
		report := benchfmt.Compare(base, doc, *threshold)
		sort.Slice(report, func(i, j int) bool { return report[i].Name < report[j].Name })
		bad := false
		for _, d := range report {
			line := fmt.Sprintf("%s: %s %.4g -> %.4g (%+.1f%%)", d.Name, d.Dimension, d.Base, d.Current, 100*d.Delta)
			switch {
			case d.Missing:
				// A benchmark in the baseline but absent from the fresh run
				// means the CI bench invocation and the committed artifact
				// have drifted apart (renamed benchmark, narrowed -bench
				// regex) — the compare would silently stop guarding it, so
				// treat it as a failure, not a warning.
				bad = true
				fmt.Printf("::error title=bench-compare::%s: in baseline but not in this run\n", d.Name)
			case d.Delta > *threshold && failDims[d.Dimension]:
				bad = true
				fmt.Printf("::error title=bench-regression::%s\n", line)
			case d.Delta > *threshold:
				fmt.Printf("::warning title=bench-regression::%s\n", line)
			default:
				fmt.Printf("bench-compare ok: %s\n", line)
			}
		}
		if bad {
			fmt.Fprintf(os.Stderr, "benchjson: regression beyond %.0f%% vs %s\n", 100**threshold, *compare)
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
