package main

import (
	"strings"
	"testing"
)

// TestRunUsageErrors pins the CLI error contract: every usage-level mistake —
// no subcommand, an unknown subcommand, a flag-parse failure, wrong arity —
// exits 2 through run's return value (never os.Exit, so deferred profile
// writers still run) and prints the usage text to stderr.
func TestRunUsageErrors(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		code   int
		stderr []string // substrings that must appear
	}{
		{
			name:   "no subcommand",
			args:   nil,
			code:   2,
			stderr: []string{"usage: quanto-trace"},
		},
		{
			name:   "unknown subcommand",
			args:   []string{"frobnicate"},
			code:   2,
			stderr: []string{`unknown subcommand "frobnicate"`, "usage: quanto-trace"},
		},
		{
			name:   "flag parse failure",
			args:   []string{"sweep", "-no-such-flag", "spec.json"},
			code:   2,
			stderr: []string{"-no-such-flag", "usage: quanto-trace"},
		},
		{
			name:   "gen arity",
			args:   []string{"gen"},
			code:   2,
			stderr: []string{"usage: quanto-trace"},
		},
		{
			name:   "merge arity",
			args:   []string{"merge", "out.bin"},
			code:   2,
			stderr: []string{"usage: quanto-trace"},
		},
		{
			name:   "record arity",
			args:   []string{"record", "only-one-arg"},
			code:   2,
			stderr: []string{"usage: quanto-trace"},
		},
		{
			name:   "dump too many files",
			args:   []string{"dump", "a.bin", "b.bin"},
			code:   1, // runtime error, not a usage error
			stderr: []string{"at most one FILE"},
		},
		{
			name:   "missing spec file",
			args:   []string{"sweep", "/no/such/spec.json"},
			code:   1,
			stderr: []string{"no/such/spec.json"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stderr strings.Builder
			if got := run(tc.args, &stderr); got != tc.code {
				t.Errorf("run(%q) = %d, want %d (stderr: %s)", tc.args, got, tc.code, stderr.String())
			}
			for _, want := range tc.stderr {
				if !strings.Contains(stderr.String(), want) {
					t.Errorf("run(%q) stderr missing %q:\n%s", tc.args, want, stderr.String())
				}
			}
		})
	}
}
