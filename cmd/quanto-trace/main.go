// Command quanto-trace works with binary Quanto logs in the mote's 12-byte
// on-the-wire format (Figure 17 of the paper).
//
// Usage:
//
//	quanto-trace gen [-seed N] [-secs S] FILE   run Blink, write its log
//	quanto-trace dump FILE                      print entries
//	quanto-trace summary FILE                   per-type/resource counts
//	quanto-trace analyze FILE                   regression + energy totals
//
// The binary format is exactly what a real mote would stream over its
// serial back channel, so logs produced elsewhere can be analyzed too.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/icount"
	"repro/internal/mote"
	"repro/internal/trace"
	"repro/internal/units"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "simulation seed (gen)")
	secs := fs.Int("secs", 48, "run length in seconds (gen)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		usage()
	}
	if fs.NArg() != 1 {
		usage()
	}
	file := fs.Arg(0)

	var err error
	switch cmd {
	case "gen":
		err = gen(file, *seed, *secs)
	case "dump":
		err = withEntries(file, dump)
	case "summary":
		err = withEntries(file, summary)
	case "analyze":
		err = withEntries(file, analyze)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "quanto-trace: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: quanto-trace gen|dump|summary|analyze [flags] FILE")
	os.Exit(2)
}

func gen(file string, seed uint64, secs int) error {
	_, n, _ := apps.RunBlink(seed, units.Ticks(secs)*units.Second, mote.DefaultOptions())
	data := trace.Marshal(n.Log.Entries)
	if err := os.WriteFile(file, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d entries (%d bytes) to %s\n", len(n.Log.Entries), len(data), file)
	return nil
}

func withEntries(file string, fn func([]core.Entry) error) error {
	data, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	entries, err := trace.Unmarshal(data)
	if err != nil {
		return err
	}
	return fn(entries)
}

func dump(entries []core.Entry) error {
	for i, e := range entries {
		fmt.Printf("%6d %s\n", i, e)
	}
	return nil
}

func summary(entries []core.Entry) error {
	perType := make(map[core.EntryType]int)
	perRes := make(map[core.ResourceID]int)
	for _, e := range entries {
		perType[e.Type]++
		perRes[e.Res]++
	}
	fmt.Printf("entries: %d (%d bytes)\n\nby type:\n", len(entries), len(entries)*core.EntrySize)
	types := make([]int, 0, len(perType))
	for t := range perType {
		types = append(types, int(t))
	}
	sort.Ints(types)
	for _, t := range types {
		fmt.Printf("  %-6s %6d\n", core.EntryType(t), perType[core.EntryType(t)])
	}
	fmt.Println("by resource:")
	rs := make([]int, 0, len(perRes))
	for r := range perRes {
		rs = append(rs, int(r))
	}
	sort.Ints(rs)
	for _, r := range rs {
		fmt.Printf("  res%-4d %6d\n", r, perRes[core.ResourceID(r)])
	}
	if len(entries) > 0 {
		first, last := entries[0], entries[len(entries)-1]
		fmt.Printf("span: %d us, %d pulses\n", last.Time-first.Time, last.IC-first.IC)
	}
	return nil
}

func analyze(entries []core.Entry) error {
	tr := analysis.NewNodeTrace(1, entries, icount.PulseEnergyMicroJoules, 3.0)
	a, err := analysis.Analyze(tr, core.NewDictionary(), analysis.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Printf("span:             %.3f s\n", float64(a.Span())/1e6)
	fmt.Printf("measured energy:  %.2f mJ\n", a.TotalEnergyUJ()/1000)
	fmt.Printf("average power:    %.2f mW\n", a.AveragePowerMW())
	fmt.Printf("state groups:     %d\n", len(a.Reg.Groups))
	fmt.Println("\nfitted draws (mW):")
	for _, p := range a.Reg.Predictors {
		fmt.Printf("  res%-3d state%-3d %8.3f\n", p.Res, p.State, a.Reg.PowerMW[p])
	}
	fmt.Printf("  const            %8.3f\n", a.Reg.ConstMW)
	fmt.Printf("\nreconstruction error: %.5f%%\n", a.ReconstructionError()*100)
	return nil
}
