// Command quanto-trace works with binary Quanto logs in the mote's 12-byte
// on-the-wire format (Figure 17 of the paper).
//
// Usage:
//
//	quanto-trace gen [-seed N] [-secs S] FILE    run Blink, write its log
//	quanto-trace dump FILE                       print entries
//	quanto-trace summary FILE                    per-type/resource counts
//	quanto-trace analyze FILE                    regression + energy totals
//	quanto-trace merge OUT FILE...               k-way merge node logs by time
//	quanto-trace sweep [-workers N] FILE         run a scenario spec or matrix
//	quanto-trace lifetime [-workers N] [-json] FILE   lifetime study of a spec or matrix
//	quanto-trace record OUT FILE                 run one shaped spec, write its send trace
//
// FILE and OUT may be "-" for stdin/stdout, so logs pipe between tools.
//
// sweep reads a declarative scenario spec, or a matrix sweeping any spec
// field over a list of values across replicated seeds, expands it, and runs
// the whole thing over a worker pool. One JSON result streams out per run in
// matrix order — byte-identical for any -workers value — followed by a final
// cross-seed aggregate with per-activity mean/stddev energy breakdowns:
//
//	echo '{"base": {"app": "lpl", "duration_us": 14000000, "seed": 1},
//	       "sweep": {"channel": [17, 26]}, "seeds": 8}' |
//	  quanto-trace sweep -workers 4 -
//
// Use -apps to list the registered workloads.
//
// Spatial radio studies sweep the same way: give the spec a placement
// ("line", "grid" or "rgg") and the propagation knobs (area_m,
// path_loss_exp, tx_range_m, capture_db) become ordinary sweepable fields,
// with per-link PRR tables and collision counts in every result. A
// 500-node random-geometric density×duty matrix is one JSON document:
//
//	echo '{"base": {"app": "relay", "nodes": 500, "duration_us": 5000000,
//	       "seed": 7, "placement": "rgg"},
//	       "sweep": {"area_m": [400, 800], "period_us": [250000, 1000000]},
//	       "seeds": 4}' |
//	  quanto-trace sweep -workers 4 -
//
// Synthetic traffic rides the same spec: give the spec a "traffic" object
// (shape constant/ramp/burst/diurnal/onoff/replay plus its knobs) and the
// send-driven apps (relay, bounce, sensesend) draw their schedules from it.
// The -traffic flag overrides every expanded run's shape from the command
// line — a what-if convenience applied after matrix expansion, so derived
// seeds keep the file's configuration identity:
//
//	echo '{"app": "relay", "nodes": 16, "origins": 4, "duration_us": 5000000,
//	       "seed": 1, "placement": "line"}' |
//	  quanto-trace sweep -traffic '{"shape":"ramp","start_rps":2,"step_rps":2,"target_rps":10,"slot_us":1000000}' -
//
// record runs one shaped spec and writes the realized send schedule as JSONL
// (header line, then {"node":N,"at_us":T} per send). A later run with
// {"shape":"replay","file":...} reproduces the recorded run byte for byte:
//
//	quanto-trace record trace.jsonl spec.json
//
// lifetime answers the question Quanto's accounting alone cannot: "how long
// does this node live on this budget?" It runs the same expanded matrix as
// sweep — the spec must give at least one node a finite battery
// (battery_uah / battery_node_uah, optionally harvest and death_policy) —
// and folds every run into a per-configuration, per-node table of death
// rate, mean time-to-death with a CI95 half-width across seeds, and mean
// remaining energy margin. -json emits the same report as one JSON document
// instead of the table. Output is byte-identical for any -workers value:
//
//	echo '{"base": {"app": "lpl", "duration_us": 30000000, "seed": 1,
//	       "channel": 17},
//	       "sweep": {"battery_uah": [4, 8],
//	                 "check_period_us": [250000, 500000]}, "seeds": 8}' |
//	  quanto-trace lifetime -workers 4 -
//
// Every subcommand streams through the batched decoder: a trace is processed
// in fixed-size chunks and never fully materialized, so multi-gigabyte logs
// use constant memory. The binary format is exactly what a real mote would
// stream over its serial back channel, so logs produced elsewhere work too.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"

	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/icount"
	"repro/internal/mote"
	"repro/internal/scenario"
	"repro/internal/trace"
	"repro/internal/traffic"
	"repro/internal/units"
)

func main() {
	// Exit via a return code so the deferred profile writers always run;
	// os.Exit here would truncate -cpuprofile/-memprofile output.
	os.Exit(run(os.Args[1:], os.Stderr))
}

// run is the whole command behind an exit code: 0 on success, 1 when a
// subcommand fails, 2 for usage errors (unknown subcommand, flag-parse
// failure, wrong arity) — which all print the usage text to stderr. Keeping
// every exit on this one return path is what lets the deferred profile
// writers run and the table test in main_test.go pin the contract.
func run(args []string, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Uint64("seed", 1, "simulation seed (gen)")
	secs := fs.Int("secs", 48, "run length in seconds (gen)")
	workers := fs.Int("workers", 0, "worker pool size, 0 = GOMAXPROCS (sweep, lifetime)")
	listApps := fs.Bool("apps", false, "list registered scenario apps and exit (sweep)")
	jsonOut := fs.Bool("json", false, "emit the report as JSON instead of a table (lifetime)")
	queue := fs.String("queue", "", `override every run's event queue: "wheel" or "heap" (sweep)`)
	partitions := fs.Int("partitions", 0, "override every run's partition count for parallel stepping, 0 = keep spec values (sweep, lifetime)")
	trafficJSON := fs.String("traffic", "", `override every run's traffic shape with this JSON object, e.g. '{"shape":"constant","rps":10}' (sweep, lifetime, record)`)
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the command to this file (sweep, lifetime)")
	memprofile := fs.String("memprofile", "", "write an allocation profile of the command to this file (sweep, lifetime)")
	if err := fs.Parse(args[1:]); err != nil {
		// flag already reported the specific problem on stderr.
		usage(stderr)
		return 2
	}

	// Profiling brackets the whole subcommand — world construction included —
	// so a perf investigation starts from where the time actually goes
	// instead of a guess about it.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "quanto-trace: cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "quanto-trace: cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(stderr, "quanto-trace: memprofile: %v\n", err)
			return 1
		}
		defer func() {
			runtime.GC() // settle the live set so the profile shows retained heap
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(stderr, "quanto-trace: memprofile: %v\n", err)
			}
			f.Close()
		}()
	}

	var err error
	switch cmd {
	case "gen":
		if fs.NArg() != 1 {
			usage(stderr)
			return 2
		}
		err = gen(fs.Arg(0), *seed, *secs)
	case "dump":
		err = withStream(fs.Args(), dump)
	case "summary":
		err = withStream(fs.Args(), summary)
	case "analyze":
		err = withStream(fs.Args(), analyze)
	case "merge":
		if fs.NArg() < 2 {
			usage(stderr)
			return 2
		}
		err = merge(fs.Arg(0), fs.Args()[1:])
	case "sweep":
		if *listApps {
			for _, name := range scenario.Apps() {
				fmt.Println(name)
			}
			return 0
		}
		if fs.NArg() != 1 {
			usage(stderr)
			return 2
		}
		err = sweep(fs.Arg(0), *workers, *queue, *partitions, *trafficJSON)
	case "lifetime":
		if fs.NArg() != 1 {
			usage(stderr)
			return 2
		}
		err = lifetime(fs.Arg(0), *workers, *jsonOut, *partitions, *trafficJSON)
	case "record":
		if fs.NArg() != 2 {
			usage(stderr)
			return 2
		}
		err = record(fs.Arg(0), fs.Arg(1), *trafficJSON)
	default:
		fmt.Fprintf(stderr, "quanto-trace: unknown subcommand %q\n", cmd)
		usage(stderr)
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "quanto-trace: %v\n", err)
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: quanto-trace gen|dump|summary|analyze [flags] FILE
       quanto-trace merge OUT FILE...
       quanto-trace sweep [-workers N] [-apps] [-queue wheel|heap] [-partitions K] [-traffic JSON] [-cpuprofile F] [-memprofile F] FILE
       quanto-trace lifetime [-workers N] [-json] [-partitions K] [-traffic JSON] [-cpuprofile F] [-memprofile F] FILE
       quanto-trace record [-traffic JSON] OUT FILE
FILE/OUT may be "-" for stdin/stdout`)
}

// openIn opens a trace input; "" or "-" selects stdin.
func openIn(name string) (io.ReadCloser, error) {
	if name == "" || name == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(name)
}

// openOut opens a trace output; "-" selects stdout.
func openOut(name string) (io.WriteCloser, func() error, error) {
	if name == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(name)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// withStream runs fn over batches decoded from the (at most one) named
// input, never holding more than one batch in memory.
func withStream(args []string, fn func(r *trace.Reader) error) error {
	if len(args) > 1 {
		return fmt.Errorf("expected at most one FILE, got %d arguments", len(args))
	}
	name := ""
	if len(args) == 1 {
		name = args[0]
	}
	in, err := openIn(name)
	if err != nil {
		return err
	}
	defer in.Close()
	return fn(trace.NewReader(bufio.NewReaderSize(in, 1<<16)))
}

// forEachBatch drives a reader to EOF in fixed-size batches.
func forEachBatch(r *trace.Reader, fn func(batch []core.Entry) error) error {
	buf := make([]core.Entry, trace.DefaultBatchEntries)
	for {
		n, err := r.ReadBatch(buf)
		if err == io.EOF {
			return nil
		}
		if n > 0 {
			if ferr := fn(buf[:n]); ferr != nil {
				return ferr
			}
		}
		if err != nil {
			return err
		}
	}
}

func gen(file string, seed uint64, secs int) error {
	_, n, _ := apps.RunBlink(seed, units.Ticks(secs)*units.Second, mote.DefaultOptions())
	out, closeOut, err := openOut(file)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(out, 1<<16)
	w := trace.NewWriter(bw)
	// Write in bounded chunks so the encode buffer stays small no matter
	// how long the run was.
	for entries := n.Log.Entries; len(entries) > 0; {
		chunk := entries
		if len(chunk) > trace.DefaultBatchEntries {
			chunk = chunk[:trace.DefaultBatchEntries]
		}
		if err := w.WriteBatch(chunk); err != nil {
			return err
		}
		entries = entries[len(chunk):]
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := closeOut(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d entries (%d bytes) to %s\n",
		w.Count(), w.Count()*trace.EntrySize, file)
	return nil
}

func dump(r *trace.Reader) error {
	w := bufio.NewWriterSize(os.Stdout, 1<<16)
	i := 0
	err := forEachBatch(r, func(batch []core.Entry) error {
		for _, e := range batch {
			fmt.Fprintf(w, "%6d %s\n", i, e)
			i++
		}
		return nil
	})
	// bufio latches the first write error; don't let Flush's result vanish.
	if ferr := w.Flush(); err == nil {
		err = ferr
	}
	return err
}

func summary(r *trace.Reader) error {
	counters := core.NewCounterSink()
	// The wire timestamp is 32 bits (~71.6 min); unwrap it so long traces
	// report their true span, and count pulses in 64 bits for the same
	// reason. A merged multi-node trace interleaves unrelated iCount
	// counters (the wire format carries no node id), which shows up as huge
	// backwards jumps — flag it and report the pulse count as meaningless
	// rather than summing garbage deltas.
	var uw trace.Unwrapper
	var startUS, endUS int64
	var pulses uint64
	var lastIC uint32
	interleaved := false
	total := 0
	err := forEachBatch(r, func(batch []core.Entry) error {
		for _, e := range batch {
			at := uw.At(e.Time)
			if total == 0 {
				startUS = at
				lastIC = e.IC
			}
			endUS = at
			d := e.IC - lastIC // uint32 wrap-aware delta
			if d >= 1<<31 {
				// A real counter never loses ground; this is another node's
				// counter spliced in by a merge.
				interleaved = true
			}
			pulses += uint64(d)
			lastIC = e.IC
			total++
		}
		counters.RecordBatch(batch)
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("entries: %d (%d bytes)\n\nby type:\n", total, total*core.EntrySize)
	types := make([]int, 0, len(counters.PerType))
	for t := range counters.PerType {
		types = append(types, int(t))
	}
	sort.Ints(types)
	for _, t := range types {
		fmt.Printf("  %-6s %6d\n", core.EntryType(t), counters.PerType[core.EntryType(t)])
	}
	fmt.Println("by resource:")
	rs := make([]int, 0, len(counters.PerRes))
	for r := range counters.PerRes {
		rs = append(rs, int(r))
	}
	sort.Ints(rs)
	for _, r := range rs {
		fmt.Printf("  res%-4d %6d\n", r, counters.PerRes[core.ResourceID(r)])
	}
	if total > 0 {
		if interleaved {
			fmt.Printf("span: %d us, pulses: n/a (merged stream interleaves per-node counters)\n", endUS-startUS)
		} else {
			fmt.Printf("span: %d us, %d pulses\n", endUS-startUS, pulses)
		}
	}
	return nil
}

func analyze(r *trace.Reader) error {
	sa := analysis.NewStreamAnalyzer(1, icount.PulseEnergyMicroJoules, 3.0, core.NewDictionary(), analysis.DefaultOptions())
	if err := forEachBatch(r, func(batch []core.Entry) error {
		sa.RecordBatch(batch)
		return nil
	}); err != nil {
		return err
	}
	a, err := sa.Finish()
	if err != nil {
		return err
	}
	fmt.Printf("span:             %.3f s\n", float64(a.Span())/1e6)
	fmt.Printf("measured energy:  %.2f mJ\n", a.TotalEnergyUJ()/1000)
	fmt.Printf("average power:    %.2f mW\n", a.AveragePowerMW())
	fmt.Printf("state groups:     %d\n", len(a.Reg.Groups))
	fmt.Println("\nfitted draws (mW):")
	for _, p := range a.Reg.Predictors {
		fmt.Printf("  res%-3d state%-3d %8.3f\n", p.Res, p.State, a.Reg.PowerMW[p])
	}
	fmt.Printf("  const            %8.3f\n", a.Reg.ConstMW)
	fmt.Printf("\nreconstruction error: %.5f%%\n", a.ReconstructionError()*100)
	return nil
}

// sweep expands a spec or matrix file and runs it over a worker pool,
// streaming one JSON result line per run in matrix order and a final
// aggregate line. The output bytes depend only on the matrix content — not
// on the worker count or which run finishes first.
// applyOverrides rewrites every spec's queue and/or partition count. Both
// are implementation choices excluded from ConfigKey, so overriding them
// cannot change any run's derived seeds or results — the queue selects
// which scheduler data structure executes them (differential perf and
// correctness runs against the heap baseline), and the partition count
// selects how many goroutines step the world (parallel runs are
// byte-identical to serial ones by construction).
func applyOverrides(specs []scenario.Spec, queue string, partitions int) error {
	if queue == "" && partitions <= 0 {
		return nil
	}
	for i := range specs {
		if queue != "" {
			specs[i].Queue = queue
		}
		if partitions > 0 {
			specs[i].Partitions = partitions
		}
		if err := specs[i].Validate(); err != nil {
			return err
		}
	}
	return nil
}

// applyTraffic rewrites every spec's traffic shape from the -traffic JSON.
// Unlike queue/partitions, the shape IS configuration (it changes ConfigKey);
// the flag is a post-expansion what-if override, so derived seeds keep the
// file's configuration identity — handy for asking "same matrix, but under a
// ramp" without editing the file.
func applyTraffic(specs []scenario.Spec, trafficJSON string) error {
	if trafficJSON == "" {
		return nil
	}
	var ts traffic.Spec
	dec := json.NewDecoder(bytes.NewReader([]byte(trafficJSON)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ts); err != nil {
		return fmt.Errorf("-traffic: %v", err)
	}
	for i := range specs {
		sp := ts
		specs[i].Traffic = &sp
		if err := specs[i].Validate(); err != nil {
			return err
		}
	}
	return nil
}

func sweep(name string, workers int, queue string, partitions int, trafficJSON string) error {
	in, err := openIn(name)
	if err != nil {
		return err
	}
	data, err := io.ReadAll(in)
	in.Close()
	if err != nil {
		return err
	}
	specs, err := scenario.ParseSpecOrMatrix(data)
	if err != nil {
		return err
	}
	if err := applyOverrides(specs, queue, partitions); err != nil {
		return err
	}
	if err := applyTraffic(specs, trafficJSON); err != nil {
		return err
	}
	effective := workers
	if effective <= 0 {
		effective = runtime.GOMAXPROCS(0)
	}
	if effective > len(specs) {
		effective = len(specs)
	}
	fmt.Fprintf(os.Stderr, "sweep: %d runs, %d workers\n", len(specs), effective)

	w := bufio.NewWriterSize(os.Stdout, 1<<16)
	enc := json.NewEncoder(w)
	failed := 0
	rn := &scenario.Runner{
		Workers: workers,
		OnResult: func(r *scenario.Result) {
			if r.Error != "" {
				failed++
			}
			enc.Encode(r)
		},
	}
	results := rn.Run(specs)

	ag := scenario.Aggregate(results)
	if err := enc.Encode(struct {
		Aggregate *analysis.Aggregate `json:"aggregate"`
	}{ag}); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d runs failed (see their error fields)", failed, len(specs))
	}
	return nil
}

// lifetime expands a spec or matrix file (which must give at least one node
// a finite battery), runs it over a worker pool, and reports per-node
// lifetimes: death rate, mean time-to-death with CI95 across seeds, and mean
// energy margin, per swept configuration. The per-run results stream to
// stderr-free stdout only in -json mode; the default output is the rendered
// table. Either form depends only on the matrix content, never the worker
// count.
//
// Routed runs (routing set in the spec) additionally get the network-layer
// report: delivery ratio, tree depth, reroutes, and — the study this
// subcommand exists for — how far past the first death the collection tree
// kept delivering. In -json mode a routed study nests both reports as
// {"lifetime": ..., "routes": ...}; unrouted studies keep the legacy
// single-report shape.
func lifetime(name string, workers int, jsonOut bool, partitions int, trafficJSON string) error {
	in, err := openIn(name)
	if err != nil {
		return err
	}
	data, err := io.ReadAll(in)
	in.Close()
	if err != nil {
		return err
	}
	specs, err := scenario.ParseSpecOrMatrix(data)
	if err != nil {
		return err
	}
	if err := applyOverrides(specs, "", partitions); err != nil {
		return err
	}
	if err := applyTraffic(specs, trafficJSON); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "lifetime: %d runs\n", len(specs))
	results := (&scenario.Runner{Workers: workers}).Run(specs)
	failed := 0
	for _, r := range results {
		if r != nil && r.Error != "" {
			failed++
			fmt.Fprintf(os.Stderr, "lifetime: run %d failed: %s\n", r.Run, r.Error)
		}
	}
	report := scenario.Lifetimes(results)
	if report.Empty() {
		// Failed runs contribute nothing to the report; don't misdiagnose
		// an all-failed sweep as a missing battery.
		if failed > 0 {
			return fmt.Errorf("%d of %d runs failed", failed, len(results))
		}
		return fmt.Errorf("no node has a finite battery; set battery_uah or battery_node_uah in the spec")
	}
	routes := scenario.Routes(results)
	w := bufio.NewWriterSize(os.Stdout, 1<<16)
	if jsonOut {
		enc := json.NewEncoder(w)
		if routes.Empty() {
			if err := enc.Encode(report); err != nil {
				return err
			}
		} else if err := enc.Encode(map[string]any{
			"lifetime": report,
			"routes":   routes,
		}); err != nil {
			return err
		}
	} else {
		if _, err := io.WriteString(w, report.Render()); err != nil {
			return err
		}
		if !routes.Empty() {
			if _, err := io.WriteString(w, "\nrouting:\n"+routes.Render()); err != nil {
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d runs failed", failed, len(results))
	}
	return nil
}

// record runs one shaped spec with send-schedule recording on and writes the
// realized schedule as JSONL to OUT. The input must expand to exactly one run
// whose app honors a traffic shape; the shape comes from the spec's own
// traffic field or the -traffic flag. The written file feeds straight back in
// as {"shape": "replay", "file": ...}, reproducing the run byte for byte.
func record(outName, name, trafficJSON string) error {
	in, err := openIn(name)
	if err != nil {
		return err
	}
	data, err := io.ReadAll(in)
	in.Close()
	if err != nil {
		return err
	}
	specs, err := scenario.ParseSpecOrMatrix(data)
	if err != nil {
		return err
	}
	if len(specs) != 1 {
		return fmt.Errorf("record needs exactly one run, matrix expands to %d", len(specs))
	}
	if err := applyTraffic(specs, trafficJSON); err != nil {
		return err
	}
	spec := specs[0]
	if spec.Traffic == nil {
		return fmt.Errorf("record needs a traffic shape: set the spec's traffic field or pass -traffic")
	}
	spec.RecordTraffic = true
	inst, err := scenario.Build(spec)
	if err != nil {
		return err
	}
	inst.Run()
	out, closeOut, err := openOut(outName)
	if err != nil {
		return err
	}
	if err := inst.Traffic.WriteJSONL(out); err != nil {
		return err
	}
	if err := closeOut(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "recorded %d sends to %s\n", len(inst.Traffic.Events()), outName)
	return nil
}

// merge k-way merges several per-node logs into one time-ordered stream,
// decoding each input concurrently. Node ids are assigned by position
// (first input = node 1). Only the 12-byte entries are written — the merged
// stream is a valid trace itself.
func merge(outName string, inNames []string) error {
	stdins := 0
	for _, name := range inNames {
		if name == "" || name == "-" {
			stdins++
		}
	}
	if stdins > 1 {
		return fmt.Errorf("stdin may be given as at most one merge input, got %d", stdins)
	}
	streams := make([]trace.ReaderStream, len(inNames))
	for i, name := range inNames {
		in, err := openIn(name)
		if err != nil {
			return err
		}
		defer in.Close()
		streams[i] = trace.ReaderStream{
			Node: core.NodeID(i + 1),
			R:    bufio.NewReaderSize(in, 1<<16),
		}
	}
	m, err := trace.MergeReaders(streams, 0)
	if err != nil {
		return err
	}
	out, closeOut, err := openOut(outName)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(out, 1<<16)
	w := trace.NewWriter(bw)
	batch := make([]core.Entry, 0, trace.DefaultBatchEntries)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := w.WriteBatch(batch)
		batch = batch[:0]
		return err
	}
	for {
		s, err := m.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// Entries merged before the failure are still written out,
			// mirroring the merger's own no-silent-loss contract; the
			// nonzero exit reports the truncation.
			flush()
			bw.Flush()
			return err
		}
		batch = append(batch, s.Entry)
		if len(batch) == cap(batch) {
			if err := flush(); err != nil {
				// Abandoning the merge mid-stream: release the per-input
				// decode goroutines before bailing out.
				m.Close()
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := closeOut(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "merged %d inputs into %d entries\n", len(inNames), w.Count())
	return nil
}
