// quantovet is the repo's determinism linter: a multichecker running the
// internal/lint analyzers (maporder, wallclock, configkey, rngdomain) over
// the given package patterns, so violations of the byte-identical-replay
// contract fail `go run ./cmd/quantovet ./...` — and CI — before a sweep
// ever runs.
//
// Usage:
//
//	quantovet [-json] [packages]
//
// With no patterns it checks ./.... Exit status: 0 when clean, 1 when any
// analyzer reported a diagnostic, 2 on usage or load errors. -json replaces
// the vet-style file:line:col lines with a machine-readable array of
// {analyzer, file, line, col, message} objects.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("quantovet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array instead of vet-style lines")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: quantovet [-json] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "quantovet: %v\n", err)
		return 2
	}
	pkgs, err := lint.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "quantovet: %v\n", err)
		return 2
	}

	diags := lint.Run(pkgs, lint.Analyzers())
	if *jsonOut {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "quantovet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
