// Benchmarks for the simulator core at scale: a 10k-node random-geometric
// relay network measured under the timer-wheel event queue and under the
// legacy binary-heap baseline (`queue=heap`). World construction runs with
// the timer stopped, so ns/op and allocs/op are the cost of the event loop
// itself — dispatch, scheduling, frame delivery — not of setup.
//
// The wheel's acceptance bar, recorded in BENCH_core.json and enforced by
// the CI bench-compare step: >= 2x the heap's throughput and >= 5x fewer
// allocations per run at 10k nodes.
package repro

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/scenario"
	"repro/internal/units"
)

// relay10kSpec is the scaling workload: 10 000 relay nodes placed as a
// random geometric graph, origin flooding every 5 ms for 30 simulated
// seconds, each node on a finite battery. The battery matters: every CPU
// active/idle edge re-projects the depletion check, a cancel+reschedule
// pair against a ~10k-entry standing queue, which is exactly the
// steady-state churn a lifetime sweep puts on the scheduler.
func relay10kSpec(queue string) scenario.Spec {
	return scenario.Spec{
		App:        "relay",
		Seed:       1,
		Nodes:      10000,
		Placement:  scenario.PlacementRGG,
		PeriodUS:   int64(5 * units.Millisecond),
		DurationUS: int64(30 * units.Second),
		BatteryUAH: 50000,
		Queue:      queue,
	}
}

func Benchmark10kNodeRelay(b *testing.B) {
	for _, queue := range []string{"wheel", "heap"} {
		b.Run(fmt.Sprintf("queue=%s", queue), func(b *testing.B) {
			spec := relay10kSpec(queue)
			b.ReportAllocs()
			var events int
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				in, err := scenario.Build(spec)
				if err != nil {
					b.Fatal(err)
				}
				// Collect construction garbage outside the timed region so
				// the first timed run does not pay the build's GC debt.
				runtime.GC()
				b.StartTimer()
				events = in.World.Run(in.Spec.Duration())
				in.World.StampEnd()
			}
			b.ReportMetric(float64(events), "events/run")
			nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if nsPerOp > 0 {
				b.ReportMetric(float64(events)*1e9/nsPerOp, "events/sec")
			}
		})
	}
}

// relayParallelSpec is the partition-scaling workload: the 10k-node RGG
// relay with 128 phase-staggered origins spreading offered load across the
// plane (a single origin concentrates nearly all traffic in one region,
// which no partition count can speed up). Only parts varies between
// sub-benchmarks, so the speedup column is pure scheduler scaling —
// parts=1 is the serial stepper, byte-identical results at every K. The
// run is shorter than relay10kSpec's because CI times every K.
func relayParallelSpec(parts int) scenario.Spec {
	s := relay10kSpec("wheel")
	s.DurationUS = int64(5 * units.Second)
	s.Origins = 128
	s.PeriodUS = int64(50 * units.Millisecond)
	s.Partitions = parts
	return s
}

func Benchmark10kNodeRelayParallel(b *testing.B) {
	for _, parts := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parts=%d", parts), func(b *testing.B) {
			spec := relayParallelSpec(parts)
			b.ReportAllocs()
			var events int
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				in, err := scenario.Build(spec)
				if err != nil {
					b.Fatal(err)
				}
				runtime.GC()
				b.StartTimer()
				events = in.World.Run(in.Spec.Duration())
				in.World.StampEnd()
			}
			b.ReportMetric(float64(events), "events/run")
			nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if nsPerOp > 0 {
				b.ReportMetric(float64(events)*1e9/nsPerOp, "events/sec")
			}
		})
	}
}
