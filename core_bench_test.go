// Benchmarks for the simulator core at scale: a 10k-node random-geometric
// relay network measured under the timer-wheel event queue and under the
// legacy binary-heap baseline (`queue=heap`). World construction runs with
// the timer stopped, so ns/op and allocs/op are the cost of the event loop
// itself — dispatch, scheduling, frame delivery — not of setup.
//
// The wheel's acceptance bar, recorded in BENCH_core.json and enforced by
// the CI bench-compare step: >= 2x the heap's throughput and >= 5x fewer
// allocations per run at 10k nodes.
package repro

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/scenario"
	"repro/internal/units"
)

// relay10kSpec is the scaling workload: 10 000 relay nodes placed as a
// random geometric graph, origin flooding every 5 ms for 30 simulated
// seconds, each node on a finite battery. The battery matters: every CPU
// active/idle edge re-projects the depletion check, a cancel+reschedule
// pair against a ~10k-entry standing queue, which is exactly the
// steady-state churn a lifetime sweep puts on the scheduler.
func relay10kSpec(queue string) scenario.Spec {
	return scenario.Spec{
		App:        "relay",
		Seed:       1,
		Nodes:      10000,
		Placement:  scenario.PlacementRGG,
		PeriodUS:   int64(5 * units.Millisecond),
		DurationUS: int64(30 * units.Second),
		BatteryUAH: 50000,
		Queue:      queue,
	}
}

func Benchmark10kNodeRelay(b *testing.B) {
	for _, queue := range []string{"wheel", "heap"} {
		b.Run(fmt.Sprintf("queue=%s", queue), func(b *testing.B) {
			spec := relay10kSpec(queue)
			b.ReportAllocs()
			var events int
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				in, err := scenario.Build(spec)
				if err != nil {
					b.Fatal(err)
				}
				// Collect construction garbage outside the timed region so
				// the first timed run does not pay the build's GC debt.
				runtime.GC()
				b.StartTimer()
				events = in.World.Sim.Run(in.Spec.Duration())
				in.World.StampEnd()
			}
			b.ReportMetric(float64(events), "events/run")
			nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if nsPerOp > 0 {
				b.ReportMetric(float64(events)*1e9/nsPerOp, "events/sec")
			}
		})
	}
}
