package repro

import (
	"encoding/json"
	"testing"

	"repro/internal/scenario"
)

func TestBounceHighRateTrafficPanics(t *testing.T) {
	for _, rps := range []float64{5, 20, 50, 200} {
		var sp scenario.Spec
		if err := json.Unmarshal([]byte(`{"app":"bounce","seed":1,"duration_us":30000000,"traffic":{"shape":"constant","rps":1}}`), &sp); err != nil {
			t.Fatal(err)
		}
		sp.Traffic.RPS = rps
		res := scenario.RunSpec(sp)
		if res.Error != "" {
			t.Logf("rps=%v err=%v", rps, res.Error)
		} else {
			t.Logf("rps=%v ok metrics=%v", rps, res.Metrics)
		}
	}
}
