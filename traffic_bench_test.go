// Benchmarks for the synthetic traffic engine: how fast shaped schedules
// generate, what a shaped run costs over the plain periodic path, and the
// record-and-replay round trip. The CI bench step runs these under the
// '^BenchmarkTraffic' regex (disjoint from the core/sweep/medium/lifetime
// suites) and compares against the committed BENCH_traffic.json baseline.
package repro

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/traffic"
	"repro/internal/units"
)

// benchShapes is the generator matrix: every non-replay shape at a load that
// produces a few thousand events over the horizon.
func benchShapes() []traffic.Spec {
	return []traffic.Spec{
		{Shape: traffic.ShapeConstant, RPS: 50},
		{Shape: traffic.ShapeRamp, StartRPS: 10, StepRPS: 10, TargetRPS: 80, SlotUS: int64(2 * units.Second)},
		{Shape: traffic.ShapeBurst, RPS: 5, BurstRPS: 200, BurstUS: int64(50 * units.Millisecond), PeriodUS: int64(500 * units.Millisecond)},
		{Shape: traffic.ShapeDiurnal, RPS: 50, PeriodUS: int64(4 * units.Second)},
		{Shape: traffic.ShapeOnOff, RPS: 100, OnMinUS: int64(100 * units.Millisecond), OffMinUS: int64(100 * units.Millisecond)},
	}
}

// BenchmarkTrafficGenerate drains 20 simulated seconds of schedule from 8
// senders per shape: the pure engine cost, no simulator attached. events/op
// makes the per-event cost comparable across shapes with different yields.
func BenchmarkTrafficGenerate(b *testing.B) {
	ids := make([]core.NodeID, 8)
	for i := range ids {
		ids[i] = core.NodeID(i + 1)
	}
	horizon := units.Ticks(20 * units.Second)
	for _, sp := range benchShapes() {
		sp := sp
		b.Run(sp.Shape, func(b *testing.B) {
			events := 0
			for i := 0; i < b.N; i++ {
				srcs, err := traffic.Sources(&sp, uint64(i+1), ids)
				if err != nil {
					b.Fatal(err)
				}
				for _, src := range srcs {
					for at, ok := src.Next(); ok && at < horizon; at, ok = src.Next() {
						events++
					}
				}
			}
			b.ReportMetric(float64(events)/float64(b.N), "events/op")
		})
	}
}

// BenchmarkTrafficShapedRelay runs a 12-node, 4-origin relay line for 5
// simulated seconds under each shape: the end-to-end cost of shaped load
// riding the full simulator, the number the periodic baseline below anchors.
func BenchmarkTrafficShapedRelay(b *testing.B) {
	for _, sp := range benchShapes() {
		sp := sp
		b.Run(sp.Shape, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec := benchTrafficRelaySpec()
				spec.Traffic = &sp
				in, err := scenario.Build(spec)
				if err != nil {
					b.Fatal(err)
				}
				in.Run()
			}
		})
	}
	b.Run("periodic-baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			in, err := scenario.Build(benchTrafficRelaySpec())
			if err != nil {
				b.Fatal(err)
			}
			in.Run()
		}
	})
}

func benchTrafficRelaySpec() scenario.Spec {
	return scenario.Spec{
		App:        "relay",
		Seed:       1,
		DurationUS: int64(5 * units.Second),
		Nodes:      12,
		Origins:    4,
		PeriodUS:   int64(100 * units.Millisecond),
	}
}

// BenchmarkTrafficRecordReplay measures the round trip: a recorded bursty
// run serialized to JSONL, parsed back, and replayed through a fresh world.
func BenchmarkTrafficRecordReplay(b *testing.B) {
	spec := benchTrafficRelaySpec()
	spec.Traffic = &traffic.Spec{
		Shape:    traffic.ShapeBurst,
		RPS:      5,
		BurstRPS: 100,
		BurstUS:  int64(100 * units.Millisecond),
		PeriodUS: int64(500 * units.Millisecond),
	}
	spec.RecordTraffic = true
	in, err := scenario.Build(spec)
	if err != nil {
		b.Fatal(err)
	}
	in.Run()
	var buf bytes.Buffer
	if err := in.Traffic.WriteJSONL(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	events := len(in.Traffic.Events())
	b.Run(fmt.Sprintf("parse/events=%d", events), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := traffic.ParseTrace(bytes.NewReader(raw)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("replay-run", func(b *testing.B) {
		path := b.TempDir() + "/trace.jsonl"
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			b.Fatal(err)
		}
		replay := benchTrafficRelaySpec()
		replay.Traffic = &traffic.Spec{Shape: traffic.ShapeReplay, File: path}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rin, err := scenario.Build(replay)
			if err != nil {
				b.Fatal(err)
			}
			rin.Run()
		}
	})
}
