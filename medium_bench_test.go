// Benchmarks for medium frame delivery: the flat broadcast model walks
// every registered receiver per transmission (O(nodes)), the spatial layer
// walks the transmitter's precomputed neighbor list (O(neighbors)). Both
// run the same constant-density grid (30 m pitch), so the broadcast cost
// grows with the node count while the spatial cost stays flat — the
// scaling contract that lets a 500-node sweep run at interactive speed.
//
// The CI medium-bench step runs these and uploads the numbers next to the
// sweep bench.
package repro

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/medium"
	"repro/internal/sim"
	"repro/internal/units"
)

// nullReceiver is a position-only radio stand-in: delivery work without
// driver work, so the benchmark isolates the medium's own cost.
type nullReceiver struct{ id core.NodeID }

func (r *nullReceiver) Node() core.NodeID               { return r.id }
func (r *nullReceiver) FrameStart(f *medium.Frame) bool { return true }

// benchTransmit transmits b.N frames round-robin across a constant-density
// grid (30 m pitch; ~5 in-range neighbors per node under a 35 m cutoff),
// draining the event queue as it goes so the active-frame list stays
// realistic.
func benchTransmit(b *testing.B, nodes int, spatial bool) {
	s := sim.New()
	m := medium.New(s)
	if spatial {
		m.EnableSpatial(medium.SpatialConfig{TxRangeM: 35, TxPowerDBm: 10, Seed: 1})
	}
	cols := int(math.Ceil(math.Sqrt(float64(nodes))))
	pos := medium.PlaceGrid(nodes, 30*float64(cols-1))
	for i := 0; i < nodes; i++ {
		r := &nullReceiver{id: core.NodeID(i + 1)}
		m.Register(r)
		if spatial {
			m.SetPosition(r.id, pos[i])
		}
	}
	b.ResetTimer()
	now := units.Ticks(0)
	for i := 0; i < b.N; i++ {
		m.Transmit(&medium.Frame{
			Src: core.NodeID(i%nodes + 1), Channel: 26, Bytes: 20, Airtime: 640,
		})
		now += 1000
		s.Run(now)
	}
}

// BenchmarkSpatialTransmit compares broadcast and neighbor-indexed delivery
// at 50/200/500 nodes. ns/op for broadcast scales with the node count;
// spatial ns/op stays flat (sublinear scaling is the acceptance bar).
func BenchmarkSpatialTransmit(b *testing.B) {
	for _, mode := range []string{"broadcast", "spatial"} {
		for _, nodes := range []int{50, 200, 500} {
			b.Run(fmt.Sprintf("%s/nodes=%d", mode, nodes), func(b *testing.B) {
				benchTransmit(b, nodes, mode == "spatial")
			})
		}
	}
}

// BenchmarkSpatialMove pins the payoff of incremental neighbor-index
// maintenance, the mobility hot path: "incremental" relocates one node per
// op through Medium.Move (patching only the affected rows), "rebuild" does
// the same relocation the pre-mobility way — invalidate and rebuild the
// whole index. Incremental cost is O(neighbors of the mover); rebuild cost
// is O(nodes · degree), so the gap widens with the node count.
func BenchmarkSpatialMove(b *testing.B) {
	setup := func(nodes int) (*medium.Medium, []medium.Position) {
		s := sim.New()
		m := medium.New(s)
		m.EnableSpatial(medium.SpatialConfig{TxRangeM: 35, TxPowerDBm: 10, Seed: 1})
		cols := int(math.Ceil(math.Sqrt(float64(nodes))))
		pos := medium.PlaceGrid(nodes, 30*float64(cols-1))
		for i := 0; i < nodes; i++ {
			r := &nullReceiver{id: core.NodeID(i + 1)}
			m.Register(r)
			m.SetPosition(r.id, pos[i])
		}
		m.WarmNeighbors()
		return m, pos
	}
	for _, mode := range []string{"incremental", "rebuild"} {
		for _, nodes := range []int{200, 1000} {
			b.Run(fmt.Sprintf("%s/nodes=%d", mode, nodes), func(b *testing.B) {
				m, pos := setup(nodes)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// Hop one node between its grid slot and a point one
					// cell over — a representative mobility step.
					id := core.NodeID(i%nodes + 1)
					p := pos[i%nodes]
					if i%(2*nodes) >= nodes {
						p.X += 31
					}
					if mode == "incremental" {
						m.Move(id, p)
					} else {
						m.SetPosition(id, p)
						m.WarmNeighbors()
					}
				}
			})
		}
	}
}
