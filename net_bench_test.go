// Benchmarks for the routing layer: what the collection tree costs on top
// of an unrouted relay, and how the routed stack scales with node count and
// with mobility churning the neighbor index. The CI bench step runs these
// under the '^BenchmarkNet(Routed|Mobile)' regex (disjoint from the core/sweep/medium/
// lifetime/traffic suites, and from the BenchmarkNetworkFootprint exhibit
// that shares the prefix) and compares against the committed BENCH_net.json
// baseline.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/scenario"
	"repro/internal/units"
)

// benchNetSpec is one routed relay run: a spatial grid sized for multi-hop
// routes, a handful of origins, default beacon period.
func benchNetSpec(nodes int) scenario.Spec {
	return scenario.Spec{
		App:        "relay",
		Seed:       1,
		DurationUS: int64(5 * units.Second),
		Nodes:      nodes,
		Origins:    4,
		PeriodUS:   int64(250 * units.Millisecond),
		Placement:  scenario.PlacementGrid,
		Routing:    scenario.RoutingCTP,
	}
}

// BenchmarkNetRoutedRelay runs the routed grid at increasing node counts
// against the identical unrouted spec: the routed/unrouted gap is the whole
// price of the networking layer — beacons on the air, link estimation,
// parent selection, per-packet route lookups.
func BenchmarkNetRoutedRelay(b *testing.B) {
	for _, routed := range []bool{false, true} {
		mode := "unrouted"
		if routed {
			mode = "routed"
		}
		for _, nodes := range []int{16, 64} {
			b.Run(fmt.Sprintf("%s/nodes=%d", mode, nodes), func(b *testing.B) {
				spec := benchNetSpec(nodes)
				if !routed {
					spec.Routing = ""
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if res := scenario.RunSpec(spec); res.Error != "" {
						b.Fatal(res.Error)
					}
				}
			})
		}
	}
}

// BenchmarkNetMobileRouted adds waypoint mobility to the routed grid: every
// MobilityStep relocates every node through the medium's incremental
// neighbor patch, and the shifting links keep the estimator and parent
// selection busy. The delta over the static routed run prices mobility.
func BenchmarkNetMobileRouted(b *testing.B) {
	for _, nodes := range []int{16, 64} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			spec := benchNetSpec(nodes)
			spec.Mobility = scenario.MobilityWaypoint
			spec.SpeedMPS = 8
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res := scenario.RunSpec(spec); res.Error != "" {
					b.Fatal(res.Error)
				}
			}
		})
	}
}
