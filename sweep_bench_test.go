// Benchmarks for the scenario sweep runner: how fast a parameter matrix
// executes as the worker pool widens. Each iteration runs the full matrix —
// build world, simulate, stream-analyze, aggregate — so ns/run is the
// end-to-end cost of one configuration replica.
//
// The CI bench step runs these with -benchtime=1x; the per-sub-benchmark
// runs/sec and ns/run metrics are the machine-readable sweep-throughput
// numbers (workers=N sub-benchmarks stand in for GOMAXPROCS scaling).
package repro

import (
	"fmt"
	"testing"

	"repro/internal/scenario"
	"repro/internal/units"
)

// benchLPLMatrix is the acceptance matrix: three swept fields x 8 derived
// seeds of the LPL interference study (2x2x2 configurations, 64 runs).
func benchLPLMatrix() scenario.Matrix {
	return scenario.Matrix{
		Base: scenario.Spec{
			App:        "lpl",
			Seed:       1,
			DurationUS: int64(2 * units.Second),
		},
		Sweep: map[string][]any{
			"channel":         {17, 26},
			"check_period_us": {250000, 500000},
			"wifi_gap_us":     {10000, 23000},
		},
		Seeds: 8,
	}
}

// BenchmarkSweepThroughput measures the same matrix under widening worker
// pools. Near-linear scaling to 4 workers is the PR's acceptance bar; the
// runs/sec metric makes regressions visible in plain bench output.
func BenchmarkSweepThroughput(b *testing.B) {
	matrix := benchLPLMatrix()
	specs, err := matrix.Expand()
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			rn := &scenario.Runner{Workers: workers}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results := rn.Run(specs)
				for _, r := range results {
					if r.Error != "" {
						b.Fatalf("run %d: %s", r.Run, r.Error)
					}
				}
			}
			nsPerRun := float64(b.Elapsed().Nanoseconds()) / float64(b.N*len(specs))
			b.ReportMetric(nsPerRun, "ns/run")
			b.ReportMetric(1e9/nsPerRun, "runs/sec")
		})
	}
}

// BenchmarkSweepSingleRun isolates one configuration end to end, the unit
// the pool amortizes.
func BenchmarkSweepSingleRun(b *testing.B) {
	spec := benchLPLMatrix().Base
	spec.Channel = 17
	for i := 0; i < b.N; i++ {
		if r := scenario.RunSpec(spec); r.Error != "" {
			b.Fatal(r.Error)
		}
	}
}
