// Benchmarks for the streaming event pipeline: k-way trace merge, batched
// codec throughput, sink fan-out, and end-to-end single-pass analysis.
//
// The headline pair is BenchmarkPipelineStreaming1M vs
// BenchmarkPipelineConcatSortBaseline1M: both merge the same 4-node,
// ~1M-entry synthetic trace and run the same analysis (online accountant +
// full breakdown per node), but the streaming path goes through the O(N log
// k) heap merge and feeds analysis incrementally, while the baseline
// reproduces the seed's concat+sort.SliceStable merge and materialized
// per-node slices.
package repro

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/trace"
)

// synthNodeLogs builds a deterministic 4-node workload that looks like a
// real Quanto log: interleaved power-state toggles on a few resources,
// activity hand-offs on the CPU, and a monotone energy counter.
func synthNodeLogs(nodes, perNode int) []trace.NodeLog {
	out := make([]trace.NodeLog, nodes)
	for n := 0; n < nodes; n++ {
		rng := uint64(n)*0x9E3779B97F4A7C15 + 0xDEADBEEF
		next := func(mod uint32) uint32 {
			rng = rng*6364136223846793005 + 1442695040888963407
			return uint32(rng>>33) % mod
		}
		entries := make([]core.Entry, perNode)
		var now, ic uint32
		for i := range entries {
			now += 5 + next(40)
			ic += next(3)
			switch next(4) {
			case 0:
				entries[i] = core.Entry{
					Type: core.EntryActivitySet, Res: 0, Time: now, IC: ic,
					Val: uint16(core.MkLabel(core.NodeID(n+1), core.ActivityID(1+next(6)))),
				}
			default:
				res := core.ResourceID(3 + next(3))
				entries[i] = core.Entry{
					Type: core.EntryPowerState, Res: res, Time: now, IC: ic,
					Val: uint16(next(2)),
				}
			}
		}
		out[n] = trace.NodeLog{Node: core.NodeID(n + 1), Entries: entries}
	}
	return out
}

const (
	benchNodes   = 4
	benchPerNode = 250_000
)

// runStreamingPipeline is the new path: k-way heap merge over per-node
// iterators, demuxed into per-node single-pass analyzers and online
// accountants. No []core.Entry is materialized beyond the inputs.
func runStreamingPipeline(b *testing.B, logs []trace.NodeLog) float64 {
	streams := make([]trace.Stream, len(logs))
	for i, l := range logs {
		streams[i] = trace.Stream{Node: l.Node, Source: trace.NewSliceSource(l.Entries)}
	}
	m, err := trace.NewMerger(streams)
	if err != nil {
		b.Fatal(err)
	}
	dict := core.NewDictionary()
	na := analysis.NewNetworkAnalyzer(dict, analysis.DefaultOptions(), 8.33, 3.0)
	acct := make(map[core.NodeID]*analysis.OnlineAccountant, len(logs))
	for _, l := range logs {
		acct[l.Node] = analysis.NewOnlineAccountant(l.Node, 8.33, nil)
	}
	for {
		s, err := m.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			b.Fatal(err)
		}
		na.Consume(s)
		acct[s.Node].Record(s.Entry)
	}
	net, err := na.Finish()
	if err != nil {
		b.Fatal(err)
	}
	total := net.TotalEnergyUJ()
	for _, uj := range net.EnergyByActivity() {
		total += uj * 0 // breakdown runs; totals already counted
	}
	for _, o := range acct {
		total += o.BaselineUJ()
	}
	return total
}

// runConcatSortBaseline reproduces the seed's data path: concatenate every
// node's log into one slice, stable-sort it, split it back per node, then
// analyze the materialized slices.
func runConcatSortBaseline(b *testing.B, logs []trace.NodeLog) float64 {
	total := 0
	for _, l := range logs {
		total += len(l.Entries)
	}
	merged := make([]trace.Stamped, 0, total)
	for _, l := range logs {
		for _, e := range l.Entries {
			merged = append(merged, trace.Stamped{Node: l.Node, Entry: e})
		}
	}
	sort.SliceStable(merged, func(i, j int) bool {
		if merged[i].Time != merged[j].Time {
			return merged[i].Time < merged[j].Time
		}
		return merged[i].Node < merged[j].Node
	})
	dict := core.NewDictionary()
	var sum float64
	var analyses []*analysis.Analysis
	for _, l := range trace.SplitByNode(merged) {
		tr := analysis.NewNodeTrace(l.Node, l.Entries, 8.33, 3.0)
		a, err := analysis.Analyze(tr, dict, analysis.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		analyses = append(analyses, a)
		o := analysis.NewOnlineAccountant(l.Node, 8.33, nil)
		for _, e := range l.Entries {
			o.Record(e)
		}
		sum += o.BaselineUJ()
	}
	net := analysis.NewNetwork(dict, analyses...)
	for _, uj := range net.EnergyByActivity() {
		sum += uj * 0 // breakdown runs; totals already counted
	}
	return sum + net.TotalEnergyUJ()
}

// seedStateIntervals is the seed repo's StateIntervals pass, kept verbatim
// as the benchmark baseline: it copies and re-fingerprints the state map for
// every interval.
func seedStateIntervals(tr *analysis.NodeTrace) []analysis.StateInterval {
	states := make(map[core.ResourceID]core.PowerState)
	var out []analysis.StateInterval
	var carryPulses uint32

	snapshot := func() (map[core.ResourceID]core.PowerState, string) {
		cp := make(map[core.ResourceID]core.PowerState, len(states))
		keys := make([]int, 0, len(states))
		for r, s := range states {
			cp[r] = s
			if s != 0 {
				keys = append(keys, int(r))
			}
		}
		sort.Ints(keys)
		key := ""
		for _, r := range keys {
			key += fmt.Sprintf("%d=%d;", r, states[core.ResourceID(r)])
		}
		return cp, key
	}

	for i := 0; i+1 < len(tr.Entries); i++ {
		e := tr.Entries[i]
		if e.Type == core.EntryPowerState {
			states[e.Res] = e.State()
		}
		start, end := tr.Times[i], tr.Times[i+1]
		pulses := tr.Entries[i+1].IC - e.IC
		if end == start {
			carryPulses += pulses
			continue
		}
		snap, key := snapshot()
		out = append(out, analysis.StateInterval{
			Start: start, End: end, Pulses: pulses + carryPulses,
			States: snap, Key: key,
		})
		carryPulses = 0
	}
	return out
}

// runSeedPath reproduces the seed repo's data path end to end: concat+sort
// merge, materialized per-node slices with unwrapped time arrays, the seed's
// map-copying interval pass, then regression, timelines, breakdown, and the
// online accountant — the same analysis products the streaming path emits.
func runSeedPath(b *testing.B, logs []trace.NodeLog) float64 {
	total := 0
	for _, l := range logs {
		total += len(l.Entries)
	}
	merged := make([]trace.Stamped, 0, total)
	for _, l := range logs {
		for _, e := range l.Entries {
			merged = append(merged, trace.Stamped{Node: l.Node, Entry: e})
		}
	}
	sort.SliceStable(merged, func(i, j int) bool {
		if merged[i].Time != merged[j].Time {
			return merged[i].Time < merged[j].Time
		}
		return merged[i].Node < merged[j].Node
	})
	dict := core.NewDictionary()
	var sum float64
	var analyses []*analysis.Analysis
	for _, l := range trace.SplitByNode(merged) {
		tr := analysis.NewNodeTrace(l.Node, l.Entries, 8.33, 3.0)
		ivs := seedStateIntervals(tr)
		reg, regErr := analysis.RunRegression(ivs, tr.PulseUJ, analysis.DefaultRegressionOptions())
		if regErr != nil {
			constMW := 0.0
			if span := tr.End() - tr.Start(); span > 0 {
				constMW = tr.TotalEnergyUJ() / float64(span) * 1000
			}
			reg = &analysis.Regression{PowerMW: make(map[analysis.Predictor]float64), ConstMW: constMW}
		}
		single, multi := analysis.BuildActivityTimelines(tr, dict.IsProxy)
		states := analysis.BuildStateTimelines(tr)
		analyses = append(analyses, &analysis.Analysis{
			Trace: tr, Dict: dict, Opts: analysis.DefaultOptions(),
			StartUS: tr.Start(), EndUS: tr.End(), TotalPulses: tr.TotalPulses(),
			Intervals: ivs, Reg: reg, RegressionErr: regErr,
			Single: single, Multi: multi, States: states,
		})
		o := analysis.NewOnlineAccountant(l.Node, 8.33, nil)
		for _, e := range l.Entries {
			o.Record(e)
		}
		sum += o.BaselineUJ()
	}
	net := analysis.NewNetwork(dict, analyses...)
	for _, uj := range net.EnergyByActivity() {
		sum += uj * 0 // breakdown runs; totals already counted
	}
	return sum + net.TotalEnergyUJ()
}

func BenchmarkPipelineSeedPath1M(b *testing.B) {
	logs := synthNodeLogs(benchNodes, benchPerNode)
	b.ResetTimer()
	var total float64
	for i := 0; i < b.N; i++ {
		total = runSeedPath(b, logs)
	}
	if total <= 0 {
		b.Fatal("no energy accounted")
	}
	b.ReportMetric(float64(benchNodes*benchPerNode)*float64(b.N)/b.Elapsed().Seconds(), "entries/s")
}

func BenchmarkPipelineStreaming1M(b *testing.B) {
	logs := synthNodeLogs(benchNodes, benchPerNode)
	b.ResetTimer()
	var total float64
	for i := 0; i < b.N; i++ {
		total = runStreamingPipeline(b, logs)
	}
	if total <= 0 {
		b.Fatal("no energy accounted")
	}
	b.ReportMetric(float64(benchNodes*benchPerNode)*float64(b.N)/b.Elapsed().Seconds(), "entries/s")
}

func BenchmarkPipelineConcatSortBaseline1M(b *testing.B) {
	logs := synthNodeLogs(benchNodes, benchPerNode)
	b.ResetTimer()
	var total float64
	for i := 0; i < b.N; i++ {
		total = runConcatSortBaseline(b, logs)
	}
	if total <= 0 {
		b.Fatal("no energy accounted")
	}
	b.ReportMetric(float64(benchNodes*benchPerNode)*float64(b.N)/b.Elapsed().Seconds(), "entries/s")
}

// TestPipelinesAgree pins the streaming pipeline to the seed path's result
// on a smaller instance of the same workload.
func TestPipelinesAgree(t *testing.T) {
	logs := synthNodeLogs(benchNodes, 5_000)
	var b testing.B
	got := runStreamingPipeline(&b, logs)
	want := runConcatSortBaseline(&b, logs)
	seed := runSeedPath(&b, logs)
	if diff := got - want; diff < -1e-6 || diff > 1e-6 {
		t.Errorf("streaming total %g != baseline total %g", got, want)
	}
	if diff := got - seed; diff < -1e-6 || diff > 1e-6 {
		t.Errorf("streaming total %g != seed-path total %g", got, seed)
	}
}

// BenchmarkMergeKWayOnly isolates the merge itself (no analysis) for a
// direct comparison with BenchmarkMergeConcatSortOnly.
func BenchmarkMergeKWayOnly(b *testing.B) {
	logs := synthNodeLogs(benchNodes, benchPerNode)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		streams := make([]trace.Stream, len(logs))
		for j, l := range logs {
			streams[j] = trace.Stream{Node: l.Node, Source: trace.NewSliceSource(l.Entries)}
		}
		m, err := trace.NewMerger(streams)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			if _, err := m.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n != benchNodes*benchPerNode {
			b.Fatalf("merged %d entries", n)
		}
	}
	b.ReportMetric(float64(benchNodes*benchPerNode)*float64(b.N)/b.Elapsed().Seconds(), "entries/s")
}

func BenchmarkMergeConcatSortOnly(b *testing.B) {
	logs := synthNodeLogs(benchNodes, benchPerNode)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, l := range logs {
			total += len(l.Entries)
		}
		merged := make([]trace.Stamped, 0, total)
		for _, l := range logs {
			for _, e := range l.Entries {
				merged = append(merged, trace.Stamped{Node: l.Node, Entry: e})
			}
		}
		sort.SliceStable(merged, func(i, j int) bool {
			if merged[i].Time != merged[j].Time {
				return merged[i].Time < merged[j].Time
			}
			return merged[i].Node < merged[j].Node
		})
		if len(merged) != benchNodes*benchPerNode {
			b.Fatalf("merged %d entries", len(merged))
		}
	}
	b.ReportMetric(float64(benchNodes*benchPerNode)*float64(b.N)/b.Elapsed().Seconds(), "entries/s")
}

// BenchmarkMergeReadersConcurrent measures the full decode+merge path from
// encoded bytes, with per-node decoding running concurrently.
func BenchmarkMergeReadersConcurrent(b *testing.B) {
	logs := synthNodeLogs(benchNodes, benchPerNode/4)
	encoded := make([][]byte, len(logs))
	totalBytes := 0
	for i, l := range logs {
		encoded[i] = trace.Marshal(l.Entries)
		totalBytes += len(encoded[i])
	}
	b.SetBytes(int64(totalBytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		streams := make([]trace.ReaderStream, len(logs))
		for j := range logs {
			streams[j] = trace.ReaderStream{Node: logs[j].Node, R: bytes.NewReader(encoded[j])}
		}
		m, err := trace.MergeReaders(streams, 0)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			if _, err := m.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n != len(logs)*benchPerNode/4 {
			b.Fatalf("merged %d entries", n)
		}
	}
}

// BenchmarkDecodeBatch measures batched decode throughput; compare with
// BenchmarkDecodeEntry for the per-entry interface cost the batch path
// eliminates.
func BenchmarkDecodeBatch(b *testing.B) {
	logs := synthNodeLogs(1, benchPerNode)
	data := trace.Marshal(logs[0].Entries)
	buf := make([]core.Entry, trace.DefaultBatchEntries)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := trace.NewReader(bytes.NewReader(data))
		n := 0
		for {
			k, err := r.ReadBatch(buf)
			n += k
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		if n != len(logs[0].Entries) {
			b.Fatalf("decoded %d entries", n)
		}
	}
}

func BenchmarkDecodeEntry(b *testing.B) {
	logs := synthNodeLogs(1, benchPerNode)
	data := trace.Marshal(logs[0].Entries)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := trace.NewReader(bytes.NewReader(data))
		n := 0
		for {
			if _, err := r.Read(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n != len(logs[0].Entries) {
			b.Fatalf("decoded %d entries", n)
		}
	}
}

// BenchmarkFanoutBatch measures a three-way Tee (collector + counter + ring)
// on the batched path vs entry-at-a-time.
func BenchmarkFanoutBatch(b *testing.B) {
	logs := synthNodeLogs(1, benchPerNode)
	entries := logs[0].Entries
	b.SetBytes(int64(len(entries) * core.EntrySize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tee := core.NewTee(core.NewCollector(), core.NewCounterSink(), core.NewRingBuffer(4096))
		if kept := tee.RecordBatch(entries); kept != len(entries) {
			b.Fatalf("kept %d", kept)
		}
	}
}

func BenchmarkFanoutSingle(b *testing.B) {
	logs := synthNodeLogs(1, benchPerNode)
	entries := logs[0].Entries
	b.SetBytes(int64(len(entries) * core.EntrySize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tee := core.NewTee(core.NewCollector(), core.NewCounterSink(), core.NewRingBuffer(4096))
		for _, e := range entries {
			tee.Record(e)
		}
	}
}
