// Benchmarks for the lifetime layer: what finite batteries cost the sweep
// runner. Battery integration rides the existing CurrentListener path and
// death projection is event-driven (no polling), so a lifetime sweep should
// run at nearly the plain sweep's throughput; these benches make that claim
// measurable. The report fold is benchmarked separately from the simulation
// so a regression in either shows up unmixed.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/scenario"
	"repro/internal/units"
)

// benchLifetimeMatrix is the acceptance matrix: battery capacity x LPL check
// interval (x harvest on/off) under derived seeds. Capacities are sized so
// roughly half the runs end in a death — both the depletion path and the
// censored-survivor path stay hot.
func benchLifetimeMatrix(seeds int) scenario.Matrix {
	return scenario.Matrix{
		Base: scenario.Spec{
			App:        "lpl",
			Seed:       1,
			DurationUS: int64(2 * units.Second),
			Channel:    17,
		},
		Sweep: map[string][]any{
			"battery_uah":     {1.0, 16.0},
			"check_period_us": {250000, 500000},
			"harvest": {
				nil,
				map[string]any{"profile": "periodic", "ua": 2000, "period_us": 100000, "on_us": 30000},
			},
		},
		Seeds: seeds,
	}
}

// BenchmarkLifetimeSweepThroughput measures the battery-enabled matrix under
// widening worker pools, reporting the same ns/run and runs/sec metrics as
// BenchmarkSweepThroughput so the two are directly comparable in CI output.
func BenchmarkLifetimeSweepThroughput(b *testing.B) {
	matrix := benchLifetimeMatrix(8)
	specs, err := matrix.Expand()
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			rn := &scenario.Runner{Workers: workers}
			b.ResetTimer()
			var deaths int
			for i := 0; i < b.N; i++ {
				results := rn.Run(specs)
				deaths = 0
				for _, r := range results {
					if r.Error != "" {
						b.Fatalf("run %d: %s", r.Run, r.Error)
					}
					deaths += r.Deaths
				}
			}
			if deaths == 0 {
				b.Fatal("no deaths in lifetime bench; depletion path not exercised")
			}
			nsPerRun := float64(b.Elapsed().Nanoseconds()) / float64(b.N*len(specs))
			b.ReportMetric(nsPerRun, "ns/run")
			b.ReportMetric(1e9/nsPerRun, "runs/sec")
		})
	}
}

// BenchmarkLifetimeBatteryOverhead pins the cost of the battery itself: the
// same single LPL configuration with and without a finite battery. The delta
// is the integration + depletion-projection overhead per run.
func BenchmarkLifetimeBatteryOverhead(b *testing.B) {
	base := scenario.Spec{
		App:        "lpl",
		Seed:       1,
		DurationUS: int64(2 * units.Second),
		Channel:    17,
	}
	b.Run("infinite-supply", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if r := scenario.RunSpec(base); r.Error != "" {
				b.Fatal(r.Error)
			}
		}
	})
	b.Run("battery", func(b *testing.B) {
		spec := base
		spec.BatteryUAH = 1e6 // survives the whole run: pure integration cost
		for i := 0; i < b.N; i++ {
			if r := scenario.RunSpec(spec); r.Error != "" {
				b.Fatal(r.Error)
			}
		}
	})
}

// BenchmarkLifetimeReportFold isolates the analysis-side fold: results in,
// rendered cross-seed lifetime table out.
func BenchmarkLifetimeReportFold(b *testing.B) {
	matrix := benchLifetimeMatrix(8)
	specs, err := matrix.Expand()
	if err != nil {
		b.Fatal(err)
	}
	results := (&scenario.Runner{}).Run(specs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report := scenario.Lifetimes(results)
		if report.Empty() {
			b.Fatal("empty report")
		}
		if len(report.Render()) == 0 {
			b.Fatal("empty render")
		}
	}
}
